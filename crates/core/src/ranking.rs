//! Cycle breaking for recovery relations.
//!
//! Step 1's fixpoint leaves a *maximal* relation `p1` that typically
//! contains cycles in `T₁ − S₁` (any two mutual recovery jumps form one).
//! Masking tolerance needs every computation to reach `S₁`, so cycles must
//! be broken — but carelessly breaking them (e.g. keeping only transitions
//! that decrease the plain BFS distance to `S₁`) destroys the original
//! program's own multi-step recovery paths, whose read-restriction groups
//! are the ones guaranteed to be complete in Step 2.
//!
//! [`break_cycles`] therefore layers the span in three phases:
//!
//! 1. **Peel** the subgraph of original safe transitions that can reach
//!    `S₁`, in reverse-topological rounds: a state is peeled once *all* its
//!    original successors are peeled. Every original acyclic recovery edge
//!    is kept this way.
//! 2. At each peel round, also admit every `p1` transition from the new
//!    layer into already-peeled states — maximal shortcuts that provably
//!    cannot create a cycle (they strictly decrease the round index).
//! 3. **Fallback BFS** over `p1` for the states the original program cannot
//!    bring back (including any originally-cyclic region): pure synthesized
//!    recovery, layered the same way.

use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_program::semantics;
use ftrepair_symbolic::SymbolicContext;

/// Break cycles in `p1` outside `s1`, preferring the original program's
/// recovery structure. `orig_safe` is the original transition relation
/// minus `mt`; `t1` is the fault-span. Returns the final transition
/// relation: `p1|S₁` plus the layered recovery edges.
pub fn break_cycles(
    cx: &mut SymbolicContext,
    p1: NodeId,
    orig_safe: NodeId,
    s1: NodeId,
    t1: NodeId,
) -> NodeId {
    let mut trans = semantics::project(cx, p1, s1);

    // Original safe edges within the span.
    let orig_in_span = semantics::project(cx, orig_safe, t1);
    // The region the original program can bring back to S₁.
    let region = cx.backward_reachable(s1, orig_in_span);

    let mut assigned = s1;
    // Phase 1+2: reverse-topological peeling of the original subgraph.
    loop {
        cx.maybe_trim_caches(crate::add_masking::CACHE_TRIM_THRESHOLD);
        let remaining = {
            let r = cx.mgr().diff(region, assigned);
            cx.mgr().and(r, t1)
        };
        if remaining == FALSE {
            break;
        }
        // States of `remaining` with an original edge into `remaining`
        // cannot be peeled yet.
        let blocked = {
            let into_remaining = cx.trans_to(orig_in_span, remaining);
            cx.preimage_of_anything(into_remaining)
        };
        let layer = cx.mgr().diff(remaining, blocked);
        if layer == FALSE {
            break; // original edges form a cycle here: leave to phase 3
        }
        let target = cx.as_next(assigned);
        let from_layer = cx.mgr().and(p1, layer);
        let kept = cx.mgr().and(from_layer, target);
        trans = cx.mgr().or(trans, kept);
        assigned = cx.mgr().or(assigned, layer);
    }

    // Phase 3: BFS over p1 for everything else.
    loop {
        cx.maybe_trim_caches(crate::add_masking::CACHE_TRIM_THRESHOLD);
        let pre = cx.preimage(assigned, p1);
        let layer = {
            let fresh = cx.mgr().diff(pre, assigned);
            cx.mgr().and(fresh, t1)
        };
        if layer == FALSE {
            break;
        }
        let target = cx.as_next(assigned);
        let from_layer = cx.mgr().and(p1, layer);
        let kept = cx.mgr().and(from_layer, target);
        trans = cx.mgr().or(trans, kept);
        assigned = cx.mgr().or(assigned, layer);
    }

    trans
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_bdd::TRUE;
    use ftrepair_program::{ProgramBuilder, Update};

    /// Line 3←2←1←0 plus full jump relation; peeling must keep every
    /// original edge and admit only forward shortcuts.
    #[test]
    fn peel_keeps_original_line_edges() {
        let mut b = ProgramBuilder::new("line");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        for v in 1..4u64 {
            let g = b.cx().assign_eq(x, v);
            b.action(g, &[(x, Update::Const(v - 1))]);
        }
        b.invariant(TRUE);
        let mut p = b.build();
        let cx = &mut p.cx;
        let orig = p.processes[0].trans;
        let s1 = cx.assign_eq(x, 0);
        let t1 = TRUE;
        // p1 = everything except self-loops... keep it simple: all pairs.
        let p1 = cx.transition_universe();
        let out = break_cycles(cx, p1, orig, s1, t1);
        // Original edges kept.
        for v in 1..4u64 {
            let e = cx.transition_cube(&[v], &[v - 1]);
            assert!(cx.mgr().leq(e, out), "original edge {v}->{} lost", v - 1);
        }
        // Shortcut 3→0 kept; backward 1→2 dropped; self-loop 2→2 dropped.
        let shortcut = cx.transition_cube(&[3], &[0]);
        assert!(cx.mgr().leq(shortcut, out));
        let backward = cx.transition_cube(&[1], &[2]);
        assert!(cx.mgr().disjoint(backward, out));
        let selfloop = cx.transition_cube(&[2], &[2]);
        assert!(cx.mgr().disjoint(selfloop, out));
    }

    /// With a cyclic original program, the cyclic part falls back to BFS
    /// jumps and the output is still acyclic outside the invariant.
    #[test]
    fn cyclic_original_falls_back() {
        let mut b = ProgramBuilder::new("cycle");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        // 1→2 and 2→1: a cycle that never reaches 0.
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(2))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(1))]);
        b.invariant(TRUE);
        let mut p = b.build();
        let cx = &mut p.cx;
        let orig = p.processes[0].trans;
        let s1 = cx.assign_eq(x, 0);
        let p1 = cx.transition_universe();
        let out = break_cycles(cx, p1, orig, s1, TRUE);
        // Both cycle states recover directly to 0.
        for v in 1..3u64 {
            let rec = cx.transition_cube(&[v], &[0]);
            assert!(cx.mgr().leq(rec, out), "{v} must recover");
        }
        // No infinite path outside the invariant.
        let outside = cx.mgr().not(s1);
        let outside_trans = semantics::project(cx, out, outside);
        let mut avoid = outside;
        loop {
            let within = semantics::project(cx, outside_trans, avoid);
            let alive = cx.preimage_of_anything(within);
            let next = cx.mgr().and(avoid, alive);
            if next == avoid {
                break;
            }
            avoid = next;
        }
        assert_eq!(avoid, FALSE);
    }
}

//! Mid-repair checkpointing: periodic snapshots of the fixpoint state so
//! an interrupted run (crash, drain, deadline, node budget) can resume
//! instead of restarting from zero.
//!
//! The repair loops already poll a [`Token`](crate::cancel::Token) at
//! every safe boundary; a [`Checkpointer`] rides the same boundaries. At
//! each one the loop *offers* its current `(invariant, span, ms)` roots;
//! the policy decides whether the offer becomes a write — every N
//! iterations, on a live-node delta, or *forced* when the token is about
//! to abort (the checkpoint-and-exit drain: capture the state the abort
//! would otherwise discard). A write exports the three BDDs to portable
//! [`SerializedBdd`] form and hands them to a caller-supplied sink — the
//! server and CLI point the sink at a
//! [`CheckpointStore`](../../ftrepair_store/checkpoint/struct.CheckpointStore.html)
//! slot; `crates/core` itself stays filesystem-free.
//!
//! Soundness is inherited from warm starts: a resumed run seeds Step 1's
//! Phase-3 reachability with the checkpointed invariant∪span (clamped to
//! `universe − ms`), Phase 4 shrinks any over-approximation back to the
//! same fixpoint, and the final result is re-verified with a cold-rerun
//! fallback. A stale, torn, or outright wrong checkpoint can cost time,
//! never correctness.

use ftrepair_bdd::{NodeId, SerializedBdd};
use ftrepair_symbolic::SymbolicContext;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// When an offer becomes a write.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointPolicy {
    /// Write every N offered boundaries (0 disables the cadence trigger).
    pub every_offers: u64,
    /// Suppress cadence/delta writes closer together than this — a tiny
    /// instance iterating fast should not hammer the disk. Forced writes
    /// (imminent abort) bypass the throttle.
    pub min_interval: Duration,
    /// Write when the manager's live-node count has moved at least this
    /// far since the last write (0 disables the delta trigger) — big
    /// fixpoint progress means the previous snapshot is stale.
    pub node_delta: usize,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy {
            every_offers: 8,
            min_interval: Duration::from_millis(200),
            node_delta: 1 << 20,
        }
    }
}

/// One captured snapshot, already exported to manager-independent form.
#[derive(Clone, Debug)]
pub struct CheckpointImage {
    /// Monotone offer index the snapshot was taken at (diagnostic).
    pub iteration: u64,
    /// The repair invariant candidate at the boundary.
    pub invariant: SerializedBdd,
    /// The fault span at the boundary.
    pub span: SerializedBdd,
    /// The unmaskable set `ms` at the boundary.
    pub ms: SerializedBdd,
    /// Live nodes in the manager when the snapshot was taken.
    pub live_nodes: usize,
}

type Sink = dyn Fn(&CheckpointImage) + Send + Sync;

struct State {
    offers: u64,
    last_write: Option<Instant>,
    last_nodes: usize,
}

/// The policy + sink pair a [`Token`](crate::cancel::Token) carries into
/// the repair loops. Shared behind an `Arc`; all methods take `&self`.
pub struct Checkpointer {
    policy: CheckpointPolicy,
    sink: Box<Sink>,
    state: Mutex<State>,
    /// One-shot: capture at the next boundary regardless of policy.
    force: AtomicBool,
    writes: AtomicU64,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("policy", &self.policy)
            .field("writes", &self.writes.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Checkpointer {
    /// A checkpointer writing through `sink` under `policy`.
    pub fn new(
        policy: CheckpointPolicy,
        sink: impl Fn(&CheckpointImage) + Send + Sync + 'static,
    ) -> Checkpointer {
        Checkpointer {
            policy,
            sink: Box::new(sink),
            state: Mutex::new(State { offers: 0, last_write: None, last_nodes: 0 }),
            force: AtomicBool::new(false),
            writes: AtomicU64::new(0),
        }
    }

    /// Capture at the next offered boundary regardless of cadence or
    /// throttle — the drain path raises this together with the cancel
    /// flag so the exiting job leaves a resume point behind.
    pub fn force_next(&self) {
        self.force.store(true, Ordering::SeqCst);
    }

    /// Snapshots written so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Offer the loop's current roots. `abort_imminent` forces the write
    /// (the caller is about to unwind; this boundary is the last chance).
    pub fn offer(
        &self,
        cx: &SymbolicContext,
        invariant: NodeId,
        span: NodeId,
        ms: NodeId,
        abort_imminent: bool,
    ) {
        let forced = abort_imminent || self.force.swap(false, Ordering::SeqCst);
        let live_nodes = cx.mgr_ref().stats().live_nodes;
        let (write, offers) = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.offers += 1;
            let cadence_due =
                self.policy.every_offers > 0 && st.offers.is_multiple_of(self.policy.every_offers);
            let delta_due = self.policy.node_delta > 0
                && live_nodes.abs_diff(st.last_nodes) >= self.policy.node_delta;
            let throttled = st.last_write.is_some_and(|t| t.elapsed() < self.policy.min_interval);
            let write = forced || ((cadence_due || delta_due) && !throttled);
            if write {
                st.last_write = Some(Instant::now());
                st.last_nodes = live_nodes;
            }
            (write, st.offers)
        };
        if !write {
            return;
        }
        let mgr = cx.mgr_ref();
        let image = CheckpointImage {
            iteration: offers,
            invariant: mgr.export(invariant),
            span: mgr.export(span),
            ms: mgr.export(ms),
            live_nodes,
        };
        (self.sink)(&image);
        self.writes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_bdd::FALSE;
    use std::sync::Arc;

    fn cx() -> SymbolicContext {
        let mut cx = SymbolicContext::new();
        cx.add_var("a", 2);
        cx.add_var("b", 2);
        cx
    }

    fn collector() -> (Arc<Mutex<Vec<u64>>>, impl Fn(&CheckpointImage) + Send + Sync) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        (seen, move |img: &CheckpointImage| sink_seen.lock().unwrap().push(img.iteration))
    }

    #[test]
    fn cadence_writes_every_n_offers() {
        let (seen, sink) = collector();
        let policy =
            CheckpointPolicy { every_offers: 4, min_interval: Duration::ZERO, node_delta: 0 };
        let ck = Checkpointer::new(policy, sink);
        let cx = cx();
        for _ in 0..12 {
            ck.offer(&cx, FALSE, FALSE, FALSE, false);
        }
        assert_eq!(*seen.lock().unwrap(), vec![4, 8, 12]);
        assert_eq!(ck.writes(), 3);
    }

    #[test]
    fn min_interval_throttles_cadence_but_not_forced_writes() {
        let (_seen, sink) = collector();
        let policy = CheckpointPolicy {
            every_offers: 1,
            min_interval: Duration::from_secs(3600),
            node_delta: 0,
        };
        let ck = Checkpointer::new(policy, sink);
        let cx = cx();
        ck.offer(&cx, FALSE, FALSE, FALSE, false);
        ck.offer(&cx, FALSE, FALSE, FALSE, false);
        assert_eq!(ck.writes(), 1, "second cadence write throttled");
        ck.offer(&cx, FALSE, FALSE, FALSE, true);
        assert_eq!(ck.writes(), 2, "imminent abort bypasses the throttle");
        ck.force_next();
        ck.offer(&cx, FALSE, FALSE, FALSE, false);
        assert_eq!(ck.writes(), 3, "force_next bypasses the throttle");
    }

    #[test]
    fn disabled_triggers_never_write_without_force() {
        let (_seen, sink) = collector();
        let policy =
            CheckpointPolicy { every_offers: 0, min_interval: Duration::ZERO, node_delta: 0 };
        let ck = Checkpointer::new(policy, sink);
        let cx = cx();
        for _ in 0..32 {
            ck.offer(&cx, FALSE, FALSE, FALSE, false);
        }
        assert_eq!(ck.writes(), 0);
        ck.force_next();
        ck.offer(&cx, FALSE, FALSE, FALSE, false);
        assert_eq!(ck.writes(), 1);
    }

    #[test]
    fn image_carries_exported_roots() {
        let images = Arc::new(Mutex::new(Vec::new()));
        let sink_images = Arc::clone(&images);
        let policy =
            CheckpointPolicy { every_offers: 1, min_interval: Duration::ZERO, node_delta: 0 };
        let ck = Checkpointer::new(policy, move |img: &CheckpointImage| {
            sink_images.lock().unwrap().push(img.clone());
        });
        let mut cx = cx();
        let v0 = cx.mgr().var(0);
        let v1 = cx.mgr().var(1);
        let both = cx.mgr().and(v0, v1);
        ck.offer(&cx, both, v0, FALSE, false);
        let images = images.lock().unwrap();
        assert_eq!(images.len(), 1);
        let mut fresh = ftrepair_bdd::Manager::new(4);
        let back = fresh.try_import(&images[0].invariant).expect("imports");
        for bits in 0..4u32 {
            let a: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(fresh.eval(back, &a), a[0] && a[1], "bits={bits}");
        }
        assert_eq!(images[0].ms.root, 0, "FALSE exports as terminal 0");
    }
}

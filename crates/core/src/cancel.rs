//! Cooperative cancellation and deadlines for the repair algorithms.
//!
//! The realizability constraint makes repair NP-complete, so a hostile
//! spec can drive the fixpoint loops effectively forever. Every algorithm
//! module therefore threads a [`Token`] through its loops and checks it at
//! each fixpoint-iteration and BDD-op-batch boundary; when the token fires
//! the repair unwinds with [`RepairAborted`] instead of running unbounded.
//! Checks are a single atomic load plus (when a deadline is armed) a clock
//! read — negligible next to one symbolic image computation.

use crate::checkpoint::Checkpointer;
use crate::options::RepairOptions;
use ftrepair_bdd::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a repair run stopped early. Returned by every repair entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairAborted {
    /// The token's deadline passed.
    Timeout,
    /// The token's cancellation flag was raised.
    Cancelled,
    /// The BDD arena outgrew [`RepairOptions::max_nodes`] and a garbage
    /// collection could not bring it back under — the memory analogue of
    /// `Timeout`, returned instead of letting the process OOM.
    ResourceExhausted,
}

impl std::fmt::Display for RepairAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairAborted::Timeout => write!(f, "repair aborted: deadline exceeded"),
            RepairAborted::Cancelled => write!(f, "repair aborted: cancelled"),
            RepairAborted::ResourceExhausted => {
                write!(f, "repair aborted: node budget exhausted")
            }
        }
    }
}

impl std::error::Error for RepairAborted {}

/// A cancellation/deadline token: an optional shared flag (raised by
/// whoever wants the run gone — a signal handler, a server draining its
/// queue) plus an optional absolute deadline. Cloning shares the flag, so
/// one raise cancels every sibling — the parallel Step 2 hands a clone to
/// each worker.
/// A token may also carry a [`Checkpointer`]; the repair loops offer their
/// fixpoint state to it at the same boundaries they poll the token, so an
/// abort (drain, deadline, node budget) leaves a resume point behind.
#[derive(Clone, Debug, Default)]
pub struct Token {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    ckpt: Option<Arc<Checkpointer>>,
}

impl Token {
    /// A token that never fires — the default for every caller that does
    /// not opt into deadlines.
    pub fn unbounded() -> Token {
        Token { flag: None, deadline: None, ckpt: None }
    }

    /// Arm the deadline from [`RepairOptions::deadline`], relative to now.
    pub fn from_options(opts: &RepairOptions) -> Token {
        match opts.deadline {
            Some(budget) => Token::deadline_in(budget),
            None => Token::unbounded(),
        }
    }

    /// A token that times out `budget` from now.
    pub fn deadline_in(budget: Duration) -> Token {
        Token { flag: None, deadline: Some(Instant::now() + budget), ckpt: None }
    }

    /// A token that times out at `at`.
    pub fn deadline_at(at: Instant) -> Token {
        Token { flag: None, deadline: Some(at), ckpt: None }
    }

    /// Attach a shared cancellation flag (keeps any existing deadline).
    pub fn with_flag(self, flag: Arc<AtomicBool>) -> Token {
        Token { flag: Some(flag), ..self }
    }

    /// Tighten with a deadline `budget` from now (keeps any existing flag;
    /// the earlier of two deadlines wins).
    pub fn with_deadline_in(self, budget: Duration) -> Token {
        let at = Instant::now() + budget;
        let deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        Token { deadline, ..self }
    }

    /// Attach a checkpointer (keeps flag and deadline). Clones share it, so
    /// checkpoints from a job's token land in one slot.
    pub fn with_checkpointer(self, ckpt: Arc<Checkpointer>) -> Token {
        Token { ckpt: Some(ckpt), ..self }
    }

    /// The attached checkpointer, if any.
    pub fn checkpointer(&self) -> Option<&Arc<Checkpointer>> {
        self.ckpt.as_ref()
    }

    /// Has the cancellation flag been raised?
    pub fn cancelled(&self) -> bool {
        self.flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// The checkpoint the algorithm loops call: `Err(Cancelled)` once the
    /// flag is raised, `Err(Timeout)` once the deadline passes, `Ok` until
    /// then. The flag is consulted first so an explicit cancel wins over a
    /// deadline that expired while the run sat in a queue.
    pub fn check(&self) -> Result<(), RepairAborted> {
        if self.cancelled() {
            return Err(RepairAborted::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(RepairAborted::Timeout);
        }
        Ok(())
    }

    /// The checkpoint variant the repair loops use once a BDD manager is in
    /// play: cancellation and deadline first ([`Token::check`]), then the
    /// manager's latched node-budget exhaustion — set by a governance
    /// checkpoint (`maybe_reorder`) when a garbage collection could not
    /// bring the arena back under [`RepairOptions::max_nodes`]. The latch
    /// is sticky, so polling at the loop boundary is enough: an
    /// over-budget arena aborts at most one BDD op batch later.
    pub fn check_governed(
        &self,
        cx: &ftrepair_symbolic::SymbolicContext,
    ) -> Result<(), RepairAborted> {
        self.check()?;
        if cx.budget_exhausted() {
            return Err(RepairAborted::ResourceExhausted);
        }
        Ok(())
    }

    /// Offer the loop's current fixpoint state to the attached
    /// checkpointer, if any. Call immediately *before* [`check_governed`]
    /// at the same boundary: when that check is about to abort the run
    /// (cancel, deadline, exhausted node budget), the write is forced so
    /// the state the abort would discard survives as a resume point.
    ///
    /// [`check_governed`]: Token::check_governed
    pub fn offer_checkpoint(
        &self,
        cx: &ftrepair_symbolic::SymbolicContext,
        invariant: NodeId,
        span: NodeId,
        ms: NodeId,
    ) {
        if let Some(ckpt) = &self.ckpt {
            let abort_imminent = self.check_governed(cx).is_err();
            ckpt.offer(cx, invariant, span, ms, abort_imminent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_fires() {
        assert_eq!(Token::unbounded().check(), Ok(()));
        assert_eq!(Token::from_options(&RepairOptions::default()).check(), Ok(()));
    }

    #[test]
    fn expired_deadline_times_out() {
        let t = Token::deadline_in(Duration::ZERO);
        assert_eq!(t.check(), Err(RepairAborted::Timeout));
        let future = Token::deadline_in(Duration::from_secs(3600));
        assert_eq!(future.check(), Ok(()));
    }

    #[test]
    fn raised_flag_cancels_and_wins_over_timeout() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = Token::deadline_in(Duration::ZERO).with_flag(Arc::clone(&flag));
        assert_eq!(t.check(), Err(RepairAborted::Timeout), "flag down: deadline fires");
        flag.store(true, Ordering::Relaxed);
        assert_eq!(t.check(), Err(RepairAborted::Cancelled), "flag up: cancel wins");
    }

    #[test]
    fn clones_share_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = Token::unbounded().with_flag(Arc::clone(&flag));
        let sibling = t.clone();
        flag.store(true, Ordering::Relaxed);
        assert!(sibling.check().is_err());
    }

    #[test]
    fn tightening_keeps_the_earlier_deadline() {
        let t = Token::deadline_in(Duration::ZERO).with_deadline_in(Duration::from_secs(3600));
        assert_eq!(t.check(), Err(RepairAborted::Timeout));
    }

    #[test]
    fn options_deadline_arms_the_token() {
        let opts = RepairOptions { deadline: Some(Duration::ZERO), ..Default::default() };
        assert_eq!(Token::from_options(&opts).check(), Err(RepairAborted::Timeout));
    }

    #[test]
    fn offer_checkpoint_forces_a_write_when_the_token_is_about_to_abort() {
        use crate::checkpoint::{CheckpointPolicy, Checkpointer};
        use ftrepair_bdd::FALSE;

        // Cadence fully disabled: only the abort-imminent force can write.
        let policy =
            CheckpointPolicy { every_offers: 0, min_interval: Duration::ZERO, node_delta: 0 };
        let ck = Arc::new(Checkpointer::new(policy, |_| {}));
        let cx = ftrepair_symbolic::SymbolicContext::new();

        let healthy = Token::unbounded().with_checkpointer(Arc::clone(&ck));
        healthy.offer_checkpoint(&cx, FALSE, FALSE, FALSE);
        assert_eq!(ck.writes(), 0, "healthy token: policy says no write");

        let expired = Token::deadline_in(Duration::ZERO).with_checkpointer(Arc::clone(&ck));
        expired.offer_checkpoint(&cx, FALSE, FALSE, FALSE);
        assert_eq!(ck.writes(), 1, "imminent timeout forces the write");

        let flag = Arc::new(AtomicBool::new(true));
        let cancelled = Token::unbounded().with_flag(flag).with_checkpointer(Arc::clone(&ck));
        cancelled.offer_checkpoint(&cx, FALSE, FALSE, FALSE);
        assert_eq!(ck.writes(), 2, "imminent cancel forces the write");

        // No checkpointer attached: a silent no-op, not a panic.
        Token::unbounded().offer_checkpoint(&cx, FALSE, FALSE, FALSE);
    }

    #[test]
    fn aborted_reasons_render_for_error_bodies() {
        assert!(RepairAborted::Timeout.to_string().contains("deadline"));
        assert!(RepairAborted::Cancelled.to_string().contains("cancelled"));
        assert!(RepairAborted::ResourceExhausted.to_string().contains("node budget"));
    }
}

//! Cooperative cancellation and deadlines for the repair algorithms.
//!
//! The realizability constraint makes repair NP-complete, so a hostile
//! spec can drive the fixpoint loops effectively forever. Every algorithm
//! module therefore threads a [`Token`] through its loops and checks it at
//! each fixpoint-iteration and BDD-op-batch boundary; when the token fires
//! the repair unwinds with [`RepairAborted`] instead of running unbounded.
//! Checks are a single atomic load plus (when a deadline is armed) a clock
//! read — negligible next to one symbolic image computation.

use crate::options::RepairOptions;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a repair run stopped early. Returned by every repair entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairAborted {
    /// The token's deadline passed.
    Timeout,
    /// The token's cancellation flag was raised.
    Cancelled,
    /// The BDD arena outgrew [`RepairOptions::max_nodes`] and a garbage
    /// collection could not bring it back under — the memory analogue of
    /// `Timeout`, returned instead of letting the process OOM.
    ResourceExhausted,
}

impl std::fmt::Display for RepairAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairAborted::Timeout => write!(f, "repair aborted: deadline exceeded"),
            RepairAborted::Cancelled => write!(f, "repair aborted: cancelled"),
            RepairAborted::ResourceExhausted => {
                write!(f, "repair aborted: node budget exhausted")
            }
        }
    }
}

impl std::error::Error for RepairAborted {}

/// A cancellation/deadline token: an optional shared flag (raised by
/// whoever wants the run gone — a signal handler, a server draining its
/// queue) plus an optional absolute deadline. Cloning shares the flag, so
/// one raise cancels every sibling — the parallel Step 2 hands a clone to
/// each worker.
#[derive(Clone, Debug, Default)]
pub struct Token {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
}

impl Token {
    /// A token that never fires — the default for every caller that does
    /// not opt into deadlines.
    pub fn unbounded() -> Token {
        Token { flag: None, deadline: None }
    }

    /// Arm the deadline from [`RepairOptions::deadline`], relative to now.
    pub fn from_options(opts: &RepairOptions) -> Token {
        match opts.deadline {
            Some(budget) => Token::deadline_in(budget),
            None => Token::unbounded(),
        }
    }

    /// A token that times out `budget` from now.
    pub fn deadline_in(budget: Duration) -> Token {
        Token { flag: None, deadline: Some(Instant::now() + budget) }
    }

    /// A token that times out at `at`.
    pub fn deadline_at(at: Instant) -> Token {
        Token { flag: None, deadline: Some(at) }
    }

    /// Attach a shared cancellation flag (keeps any existing deadline).
    pub fn with_flag(self, flag: Arc<AtomicBool>) -> Token {
        Token { flag: Some(flag), ..self }
    }

    /// Tighten with a deadline `budget` from now (keeps any existing flag;
    /// the earlier of two deadlines wins).
    pub fn with_deadline_in(self, budget: Duration) -> Token {
        let at = Instant::now() + budget;
        let deadline = Some(self.deadline.map_or(at, |d| d.min(at)));
        Token { deadline, ..self }
    }

    /// Has the cancellation flag been raised?
    pub fn cancelled(&self) -> bool {
        self.flag.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// The checkpoint the algorithm loops call: `Err(Cancelled)` once the
    /// flag is raised, `Err(Timeout)` once the deadline passes, `Ok` until
    /// then. The flag is consulted first so an explicit cancel wins over a
    /// deadline that expired while the run sat in a queue.
    pub fn check(&self) -> Result<(), RepairAborted> {
        if self.cancelled() {
            return Err(RepairAborted::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(RepairAborted::Timeout);
        }
        Ok(())
    }

    /// The checkpoint variant the repair loops use once a BDD manager is in
    /// play: cancellation and deadline first ([`Token::check`]), then the
    /// manager's latched node-budget exhaustion — set by a governance
    /// checkpoint (`maybe_reorder`) when a garbage collection could not
    /// bring the arena back under [`RepairOptions::max_nodes`]. The latch
    /// is sticky, so polling at the loop boundary is enough: an
    /// over-budget arena aborts at most one BDD op batch later.
    pub fn check_governed(
        &self,
        cx: &ftrepair_symbolic::SymbolicContext,
    ) -> Result<(), RepairAborted> {
        self.check()?;
        if cx.budget_exhausted() {
            return Err(RepairAborted::ResourceExhausted);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_never_fires() {
        assert_eq!(Token::unbounded().check(), Ok(()));
        assert_eq!(Token::from_options(&RepairOptions::default()).check(), Ok(()));
    }

    #[test]
    fn expired_deadline_times_out() {
        let t = Token::deadline_in(Duration::ZERO);
        assert_eq!(t.check(), Err(RepairAborted::Timeout));
        let future = Token::deadline_in(Duration::from_secs(3600));
        assert_eq!(future.check(), Ok(()));
    }

    #[test]
    fn raised_flag_cancels_and_wins_over_timeout() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = Token::deadline_in(Duration::ZERO).with_flag(Arc::clone(&flag));
        assert_eq!(t.check(), Err(RepairAborted::Timeout), "flag down: deadline fires");
        flag.store(true, Ordering::Relaxed);
        assert_eq!(t.check(), Err(RepairAborted::Cancelled), "flag up: cancel wins");
    }

    #[test]
    fn clones_share_the_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let t = Token::unbounded().with_flag(Arc::clone(&flag));
        let sibling = t.clone();
        flag.store(true, Ordering::Relaxed);
        assert!(sibling.check().is_err());
    }

    #[test]
    fn tightening_keeps_the_earlier_deadline() {
        let t = Token::deadline_in(Duration::ZERO).with_deadline_in(Duration::from_secs(3600));
        assert_eq!(t.check(), Err(RepairAborted::Timeout));
    }

    #[test]
    fn options_deadline_arms_the_token() {
        let opts = RepairOptions { deadline: Some(Duration::ZERO), ..Default::default() };
        assert_eq!(Token::from_options(&opts).check(), Err(RepairAborted::Timeout));
    }

    #[test]
    fn aborted_reasons_render_for_error_bodies() {
        assert!(RepairAborted::Timeout.to_string().contains("deadline"));
        assert!(RepairAborted::Cancelled.to_string().contains("cancelled"));
        assert!(RepairAborted::ResourceExhausted.to_string().contains("node budget"));
    }
}

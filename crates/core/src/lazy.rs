//! Algorithm 1: adding masking fault-tolerance to a distributed program via
//! lazy repair — Step 1 (Add-Masking, no realizability), Step 2
//! (realizability by removal), and the deadlock-resolution outer loop.

use crate::add_masking::add_masking_seeded;
use crate::cancel::{RepairAborted, Token};
use crate::options::RepairOptions;
use crate::parallel::step2_parallel_cancellable;
use crate::stats::RepairStats;
use crate::step2::step2_cancellable;
use crate::warm::WarmSeeds;
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_program::{DistributedProgram, Process};
use ftrepair_telemetry::{Json, Telemetry};
use std::time::Instant;

/// Output of lazy repair.
#[derive(Clone, Debug)]
pub struct LazyOutcome {
    /// Per-process realizable transition predicates (empty iff `failed`).
    pub processes: Vec<Process>,
    /// The repaired invariant `S'`.
    pub invariant: NodeId,
    /// The fault-span `T'`.
    pub span: NodeId,
    /// `δ_P'` — union of the per-process predicates.
    pub trans: NodeId,
    /// True iff the algorithm declared failure (Line 7 of Algorithm 1, or
    /// the outer-iteration bound was hit).
    pub failed: bool,
    /// Timings and group counters.
    pub stats: RepairStats,
}

/// Run Algorithm 1 on `prog`. Returns `Err(RepairAborted)` once
/// [`RepairOptions::deadline`] (if set) expires — "the algorithm declared
/// failure" stays an `Ok` outcome with `failed: true`; an abort means the
/// answer is unknown.
pub fn lazy_repair(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
) -> Result<LazyOutcome, RepairAborted> {
    lazy_repair_traced(prog, opts, &Telemetry::off())
}

/// [`lazy_repair`] with telemetry: spans around every outer iteration and
/// both steps, per-iteration BDD-size samples (the `iterations` series in
/// run reports), peak-size gauges, and counters that mirror the
/// [`RepairStats`] fields event-for-event. With a disabled handle every
/// instrumentation point is a single branch.
pub fn lazy_repair_traced(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
) -> Result<LazyOutcome, RepairAborted> {
    lazy_repair_cancellable(prog, opts, tele, &Token::from_options(opts))
}

/// [`lazy_repair_traced`] against an externally owned [`Token`], so a
/// server can cancel or deadline a run it did not configure via options.
/// The token is checked on entry (an already-expired deadline aborts
/// before any transition is added) and at every fixpoint iteration of both
/// steps and the outer loop.
pub fn lazy_repair_cancellable(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
) -> Result<LazyOutcome, RepairAborted> {
    lazy_repair_warm(prog, opts, tele, token, &WarmSeeds::none())
}

/// [`lazy_repair_cancellable`] with warm-start seeds: a cached neighbor's
/// invariant/fault-span BDDs (already imported into `prog`'s manager) seed
/// the first outer iteration's Step 1 reachability. Deadlock retries run
/// unseeded — their whole point is to shrink what the first pass grew. With
/// empty seeds this *is* the cold path. The caller is responsible for
/// verifying the outcome (e.g. `verify::verify_outcome`) exactly as for a
/// cold repair; soundness is argued in [`crate::warm`], verification is the
/// belt to those braces.
pub fn lazy_repair_warm(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
    seeds: &WarmSeeds,
) -> Result<LazyOutcome, RepairAborted> {
    if !seeds.is_empty() {
        tele.add("repair.warm_starts", 1);
        // Seeds must survive GC at reorder checkpoints (which collect down
        // to roots) until their one use in iteration 1; like `stutters`,
        // the protection simply persists for the manager's lifetime.
        for root in seeds.roots() {
            prog.cx.mgr().protect(root);
        }
    }
    let r = lazy_repair_inner(prog, opts, tele, token, seeds);
    if let Ok(out) = &r {
        let roots: Vec<NodeId> = [out.invariant, out.span, out.trans]
            .into_iter()
            .chain(out.processes.iter().map(|p| p.trans))
            .collect();
        crate::reorder::protect_outcome(prog, roots);
    }
    // Reorder/peak statistics flow into the run report whatever happened —
    // success, declared failure, or abort.
    crate::reorder::emit_bdd_tele(tele, prog);
    r
}

fn lazy_repair_inner(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
    seeds: &WarmSeeds,
) -> Result<LazyOutcome, RepairAborted> {
    token.check()?;
    let auto_reorder = crate::reorder::configure(prog, opts);
    let mut stats = RepairStats::default();
    let mut s_prime = prog.invariant;
    let mut safety = prog.safety;

    // Original stutter states: legal termination points inside the
    // invariant are not deadlocks (Definition 18).
    let stutters = {
        let delta_p = prog.program_trans();
        let universe = prog.cx.state_universe();
        prog.cx.deadlocks(universe, delta_p)
    };
    if opts.reorder != crate::options::ReorderMode::None {
        // `stutters` must survive the checkpoints inside Step 1/2 (they
        // cannot see it); the protection persists like the base roots'.
        prog.cx.mgr().protect(stutters);
        if opts.reorder == crate::options::ReorderMode::Sift {
            prog.cx.reorder_sift(&[s_prime, safety.bad_states, safety.bad_trans]);
        }
    }

    // Per-phase latency histograms: one observation per outer iteration,
    // so distributions across many jobs (server mode) stay meaningful.
    let h_step1 = tele.histogram("repair.step1.seconds");
    let h_step2 = tele.histogram("repair.step2.seconds");

    for _ in 0..opts.max_outer_iterations {
        let mut iter_span = tele.span("outer_iteration");
        stats.cancel_checks += 1;
        token.check_governed(&prog.cx)?;
        stats.outer_iterations += 1;
        iter_span.field("iter", Json::from(stats.outer_iterations as u64));
        tele.add("repair.outer_iterations", 1);

        // Step 1 (Line 3). Warm seeds apply to the first iteration only:
        // a deadlock retry re-enters with a mutated safety relation, and
        // re-widening the span there would fight the retry's shrinking.
        let iteration_seeds = if stats.outer_iterations == 1 { *seeds } else { WarmSeeds::none() };
        let t0 = Instant::now();
        let r1 = {
            let _s = tele.span("step1");
            add_masking_seeded(
                prog,
                s_prime,
                &safety,
                opts.restrict_to_reachable,
                tele,
                token,
                &iteration_seeds,
            )
        };
        let step1_elapsed = t0.elapsed();
        stats.step1_time += step1_elapsed;
        h_step1.observe_duration(step1_elapsed);
        let r1 = r1?;
        if r1.failed {
            return Ok(LazyOutcome {
                processes: Vec::new(),
                invariant: FALSE,
                span: FALSE,
                trans: FALSE,
                failed: true,
                stats,
            });
        }
        s_prime = r1.invariant;

        // Step 1's converged (invariant, span, ms) is the natural resume
        // point: offered as a checkpoint, it seeds a later run's Phase-3
        // reachability exactly like a warm-start neighbor would.
        token.offer_checkpoint(&prog.cx, s_prime, r1.span, r1.ms);

        // Per-iteration BDD shape: how big the invariant/fault-span grew
        // this round, and how full the arena is. Gated — `node_count`
        // walks the DAG, which is not free.
        if tele.enabled() {
            let mgr = prog.cx.mgr_ref();
            let inv_nodes = mgr.node_count(s_prime) as u64;
            let span_nodes = mgr.node_count(r1.span) as u64;
            let live = mgr.stats().live_nodes as u64;
            iter_span.field("invariant_nodes", Json::from(inv_nodes));
            iter_span.field("span_nodes", Json::from(span_nodes));
            iter_span.field("live_nodes", Json::from(live));
            tele.max_gauge("bdd.peak_invariant_nodes", inv_nodes);
            tele.max_gauge("bdd.peak_span_nodes", span_nodes);
            tele.max_gauge("bdd.peak_live_nodes", live);
            tele.push_sample(
                "iterations",
                &[
                    ("iter", stats.outer_iterations as f64),
                    ("invariant_nodes", inv_nodes as f64),
                    ("span_nodes", span_nodes as f64),
                    ("live_nodes", live as f64),
                ],
            );
        }

        // Step 2 (Line 9). Step 2's reorder checkpoints root only its own
        // values, so the locals this loop still needs afterwards are
        // protected across the call.
        let step2_guard = [s_prime, safety.bad_states, safety.bad_trans];
        if auto_reorder {
            for r in step2_guard {
                prog.cx.mgr().protect(r);
            }
        }
        let t1 = Instant::now();
        let r2 = {
            let _s = tele.span("step2");
            if opts.parallel_step2 {
                step2_parallel_cancellable(prog, r1.trans, r1.span, opts, tele, token)
            } else {
                step2_cancellable(prog, r1.trans, r1.span, opts, tele, token)
            }
        };
        let step2_elapsed = t1.elapsed();
        stats.step2_time += step2_elapsed;
        h_step2.observe_duration(step2_elapsed);
        if auto_reorder {
            for r in step2_guard {
                prog.cx.mgr().unprotect(r);
            }
        }
        let r2 = r2?;
        stats.absorb(&r2.stats);

        // Line 10: deadlocks created by Step 2's removals, judged on the
        // states actually reachable in the presence of faults. Outside the
        // invariant a deadlock always blocks recovery; inside it, a state
        // that lost all its actions is (by default) a legal termination
        // point under stuttering semantics — see
        // `RepairOptions::allow_new_terminal_inside`.
        let dl = {
            // The fault-span over-approximates reachability and is exactly
            // the set the recovery obligation covers, so deadlocks are
            // judged against it (recomputing reachability under the
            // repaired relation would double Step 1's cost for nothing).
            let cx = &mut prog.cx;
            let dead = cx.deadlocks(r1.span, r2.trans);
            if opts.allow_new_terminal_inside {
                cx.mgr().diff(dead, s_prime)
            } else {
                let exempt = cx.mgr().and(stutters, s_prime);
                cx.mgr().diff(dead, exempt)
            }
        };

        if dl == FALSE {
            return Ok(LazyOutcome {
                processes: r2.processes,
                invariant: s_prime,
                span: r1.span,
                trans: r2.trans,
                failed: false,
                stats,
            });
        }

        tele.add("repair.deadlock_retries", 1);

        // Line 11: outlaw transitions into the deadlock states and
        // transitions leaving the fault-span, then repeat. A deadlock state
        // *inside* the invariant can never be entered-into-oblivion — it is
        // itself legitimate — so it is additionally evicted from S'
        // directly ("we make those states unreachable starting from the
        // invariant"); S' strictly shrinks, guaranteeing convergence.
        let cx = &mut prog.cx;
        let into_dl = cx.as_next(dl);
        let outside_span = cx.mgr().not(r1.span);
        let into_outside = cx.as_next(outside_span);
        let newly_bad = cx.mgr().or(into_dl, into_outside);
        safety = safety.with_bad_trans(cx, newly_bad);
        s_prime = cx.mgr().diff(s_prime, dl);
    }

    Ok(LazyOutcome {
        processes: Vec::new(),
        invariant: FALSE,
        span: FALSE,
        trans: FALSE,
        failed: true,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_outcome;
    use ftrepair_program::{ProgramBuilder, Update};

    /// Single-process system (reads/writes everything): lazy repair should
    /// behave exactly like Add-Masking since realizability is trivial.
    fn full_view() -> DistributedProgram {
        let mut b = ProgramBuilder::new("fullview");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Choice(vec![2, 3]))]);
        b.build()
    }

    #[test]
    fn full_view_repairs_and_verifies() {
        let mut p = full_view();
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (masking, realizability) = verify_outcome(&mut p, &out);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
        assert_eq!(out.stats.outer_iterations, 1, "no deadlock retry expected");
    }

    /// Two processes with partial views. Process `a` sees x and flag,
    /// process `b` sees y and flag. Faults corrupt x. Recovery of x needs
    /// only x — realizable for `a` despite the partial view.
    fn partial_view() -> DistributedProgram {
        let mut b = ProgramBuilder::new("partialview");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("a", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        b.process("b", &[y], &[y]);
        let h0 = b.cx().assign_eq(y, 0);
        b.action(h0, &[(y, Update::Const(1))]);
        let h1 = b.cx().assign_eq(y, 1);
        b.action(h1, &[(y, Update::Const(0))]);
        let inv = {
            let a0 = b.cx().assign_eq(x, 0);
            let a1 = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a0, a1)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn partial_view_repairs_and_verifies() {
        let mut p = partial_view();
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (masking, realizability) = verify_outcome(&mut p, &out);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
        // Recovery from x=2 exists and belongs to process a.
        let x = p.cx.find_var("x").unwrap();
        let s2 = p.cx.assign_eq(x, 2);
        let rec = p.cx.mgr().and(out.processes[0].trans, s2);
        assert_ne!(rec, FALSE);
    }

    #[test]
    fn pure_lazy_also_verifies() {
        let mut p = partial_view();
        let out = lazy_repair(&mut p, &RepairOptions::pure_lazy()).unwrap();
        assert!(!out.failed);
        let (masking, realizability) = verify_outcome(&mut p, &out);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
    }

    #[test]
    fn hopeless_input_fails_cleanly() {
        let mut b = ProgramBuilder::new("hopeless");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 0);
        b.fault_action(fg, &[(x, Update::Const(1))]);
        let bad = b.cx().assign_eq(x, 1);
        b.bad_states(bad);
        let mut p = b.build();
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(out.failed);
        assert_eq!(out.trans, FALSE);
    }

    /// A case where Step 2 *must* drop a group and the outer loop has to
    /// re-run: process `a` cannot read y, and the only recovery for x=2
    /// would need to depend on y (bad transitions forbid half the group).
    #[test]
    fn deadlock_retry_loop_converges() {
        let mut b = ProgramBuilder::new("retry");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("a", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        b.process("b", &[x, y], &[y]);
        let inv = {
            let a0 = b.cx().assign_eq(x, 0);
            let a1 = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a0, a1)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        // Forbid the specific recovery (x=2,y=1) → (x=0,y=1): process a's
        // recovery group 2→0 loses a member; it must fall back to 2→1 or
        // the run must still verify after the retry loop.
        let bt = b.cx().transition_cube(&[2, 1], &[0, 1]);
        b.bad_trans(bt);
        let mut p = b.build();
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (masking, realizability) = verify_outcome(&mut p, &out);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
    }

    #[test]
    fn expired_deadline_aborts_before_any_transition_is_added() {
        let mut p = partial_view();
        let opts =
            RepairOptions { deadline: Some(std::time::Duration::ZERO), ..RepairOptions::default() };
        let tele = Telemetry::new();
        let r = lazy_repair_traced(&mut p, &opts, &tele);
        assert_eq!(r.unwrap_err(), RepairAborted::Timeout);
        let snap = tele.snapshot();
        assert_eq!(snap.counter("repair.outer_iterations"), 0, "aborted before iteration 1");
        assert_eq!(snap.counter("step2.picks"), 0);
    }

    #[test]
    fn checkpoint_offers_fire_and_seed_a_resumed_run() {
        use crate::checkpoint::{CheckpointImage, CheckpointPolicy, Checkpointer};
        use std::sync::{Arc, Mutex};

        let images: Arc<Mutex<Vec<CheckpointImage>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_images = Arc::clone(&images);
        let policy = CheckpointPolicy {
            every_offers: 1,
            min_interval: std::time::Duration::ZERO,
            node_delta: 0,
        };
        let ck = Arc::new(Checkpointer::new(policy, move |img: &CheckpointImage| {
            sink_images.lock().unwrap().push(img.clone());
        }));
        let mut p = partial_view();
        let token = Token::unbounded().with_checkpointer(Arc::clone(&ck));
        let out =
            lazy_repair_cancellable(&mut p, &RepairOptions::default(), &Telemetry::off(), &token)
                .unwrap();
        assert!(!out.failed);
        assert!(ck.writes() >= 1, "every hooked boundary should have written");

        // Resume path: import the last image into a fresh manager and use
        // it as warm seeds — the exact mechanics of a post-crash resume.
        let last = images.lock().unwrap().last().unwrap().clone();
        let mut q = partial_view();
        let seeds = WarmSeeds {
            invariant: Some(q.cx.mgr().try_import(&last.invariant).expect("invariant imports")),
            span: Some(q.cx.mgr().try_import(&last.span).expect("span imports")),
        };
        let resumed = lazy_repair_warm(
            &mut q,
            &RepairOptions::default(),
            &Telemetry::off(),
            &Token::unbounded(),
            &seeds,
        )
        .unwrap();
        assert!(!resumed.failed);
        let (masking, realizability) = verify_outcome(&mut q, &resumed);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
        // Root-for-root parity with the uninterrupted run.
        assert_eq!(p.cx.count_states(out.invariant), q.cx.count_states(resumed.invariant));
        assert_eq!(p.cx.count_states(out.span), q.cx.count_states(resumed.span));
    }

    #[test]
    fn cancel_after_a_snapshot_unwinds_with_the_checkpoint_intact() {
        use crate::checkpoint::{CheckpointImage, CheckpointPolicy, Checkpointer};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // The drain scenario, scheduled deterministically: the sink raises
        // the cancel flag the moment the first snapshot lands, so the very
        // next `check_governed` at the same boundary aborts the run — and
        // the state it discards has already been captured.
        let flag = Arc::new(AtomicBool::new(false));
        let sink_flag = Arc::clone(&flag);
        let policy = CheckpointPolicy {
            every_offers: 1,
            min_interval: std::time::Duration::ZERO,
            node_delta: 0,
        };
        let ck = Arc::new(Checkpointer::new(policy, move |_img: &CheckpointImage| {
            sink_flag.store(true, Ordering::Relaxed);
        }));
        let mut p = partial_view();
        let token =
            Token::unbounded().with_flag(Arc::clone(&flag)).with_checkpointer(Arc::clone(&ck));
        let r =
            lazy_repair_cancellable(&mut p, &RepairOptions::default(), &Telemetry::off(), &token);
        assert_eq!(r.unwrap_err(), RepairAborted::Cancelled);
        assert_eq!(ck.writes(), 1, "exactly the snapshot that triggered the cancel");
    }

    #[test]
    fn raised_flag_cancels_mid_options_run() {
        let mut p = partial_view();
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let token = Token::unbounded().with_flag(flag);
        let r =
            lazy_repair_cancellable(&mut p, &RepairOptions::default(), &Telemetry::off(), &token);
        assert_eq!(r.unwrap_err(), RepairAborted::Cancelled);
    }
}

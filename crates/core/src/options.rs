//! Tunable knobs shared by the repair algorithms — each one corresponds to
//! a design choice the paper discusses, and each has an ablation bench.

use std::time::Duration;

/// When the BDD engine reorders variables during a repair.
///
/// Reordering permutes the variable order to shrink the live-node count; it
/// never changes any function, so all modes compute the same repair (proven
/// against the explicit-state oracle in `tests/reorder_parity.rs`). What
/// changes is the peak memory profile and — on order-sensitive instances —
/// the wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReorderMode {
    /// Keep the declaration order untouched (the paper's implicit setting).
    None,
    /// Run one grouped sifting pass at repair entry, then keep that order.
    Sift,
    /// Arm the dynamic trigger: sift whenever the live-node count doubles
    /// past a threshold, checked at the same safe boundaries where the
    /// cancellation token is polled. The default.
    #[default]
    Auto,
}

impl ReorderMode {
    /// Parse the CLI/server spelling (`none` | `sift` | `auto`).
    pub fn parse(s: &str) -> Option<ReorderMode> {
        match s {
            "none" => Some(ReorderMode::None),
            "sift" => Some(ReorderMode::Sift),
            "auto" => Some(ReorderMode::Auto),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`ReorderMode::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            ReorderMode::None => "none",
            ReorderMode::Sift => "sift",
            ReorderMode::Auto => "auto",
        }
    }
}

/// Live-node count at which [`ReorderMode::Auto`] first fires. A firing
/// collects garbage, sifts only if the collection alone did not bring the
/// arena back under this value (fixpoint growth is usually dead
/// intermediates, which a GC removes at a fraction of a sift's cost), and
/// re-arms at twice the surviving size — never below this floor.
///
/// Calibrated well above the peaks of the small case-study instances
/// (byzantine agreement through n=6 stays under 180k nodes and solves in
/// milliseconds — any trigger there costs more than it saves), and below
/// the multi-million-node peaks of the big Table III chains, where the
/// trigger cuts peak memory ~3× at neutral-to-better wall-clock.
pub const AUTO_REORDER_THRESHOLD: usize = 400_000;

/// Options for [`crate::lazy_repair`], [`crate::cautious_repair`] and their
/// building blocks.
#[derive(Clone, Copy, Debug)]
pub struct RepairOptions {
    /// Restrict Step 1's fault-span search to states reachable by the
    /// fault-intolerant program in the presence of faults (Section V-A).
    /// The paper observes that *pure* lazy repair (this off) does not beat
    /// cautious repair; with the heuristic it does.
    pub restrict_to_reachable: bool,
    /// Enforce the read restriction with the closed-form set computation
    /// `δ_j = Δ_j − group(group(Δ_j) − Δ_j)` (two symbolic group
    /// operations) instead of Algorithm 2's transition-at-a-time loop.
    /// Produces the identical result — groups are disjoint equivalence
    /// classes, so the loop's fixpoint is exactly the union of fully
    /// contained classes — but orders of magnitude faster; this is the
    /// set-level formulation a BDD-based tool actually executes.
    pub step2_closed_form: bool,
    /// Use `ExpandGroup` in Step 2 (Section V-B) to absorb exponentially
    /// many sibling groups per iteration. Only meaningful for the
    /// iterative strategy (`step2_closed_form = false`).
    pub use_expand_group: bool,
    /// Run Step 2's per-process loop on worker threads (one BDD manager
    /// per process). Our HPC extension; not part of the paper.
    pub parallel_step2: bool,
    /// Accept states that lose *all* their transitions inside the repaired
    /// invariant as legal termination points (Definition 18 stutters them).
    /// Sound whenever the specification has no leads-to liveness inside the
    /// invariant — true for all of the paper's case studies, where e.g. a
    /// byzantine-agreement process that can never finalize safely simply
    /// stops. With `false`, such states are evicted from `S'` instead
    /// (strict preservation of potential liveness, at the cost of a much
    /// smaller invariant).
    pub allow_new_terminal_inside: bool,
    /// Safety bound on Algorithm 1's outer repeat loop.
    pub max_outer_iterations: usize,
    /// Wall-clock budget for the whole repair. `None` (the default) runs
    /// unbounded; `Some(d)` arms a [`crate::cancel::Token`] deadline at
    /// entry, and every fixpoint loop aborts with
    /// [`crate::cancel::RepairAborted::Timeout`] once it passes. Not part
    /// of the result — two runs differing only in deadline compute the same
    /// repair (or one aborts), which is why the server's content-address
    /// fingerprint excludes it.
    pub deadline: Option<Duration>,
    /// Live-node budget for the repair's BDD manager. `0` (the default)
    /// runs unbounded; a positive value makes the arena's governance
    /// checkpoints garbage-collect when the live count crosses it and, if
    /// the collection alone cannot get back under, abort the run with
    /// [`crate::cancel::RepairAborted::ResourceExhausted`] at the next
    /// cancellation boundary — a clean 503/exit-125 instead of an OOM
    /// kill. Like `deadline`, this bounds *whether* a repair finishes, not
    /// what it computes, so the server's content-address fingerprint
    /// excludes it.
    pub max_nodes: usize,
    /// Dynamic variable reordering policy for the repair's BDD manager.
    /// Part of the result's content address: while every mode computes a
    /// semantically identical repair, cube *enumeration* follows BDD
    /// structure, so rendered output can differ textually between orders.
    pub reorder: ReorderMode,
}

impl Default for RepairOptions {
    fn default() -> Self {
        RepairOptions {
            restrict_to_reachable: true,
            step2_closed_form: true,
            use_expand_group: true,
            parallel_step2: false,
            allow_new_terminal_inside: true,
            max_outer_iterations: 32,
            deadline: None,
            max_nodes: 0,
            reorder: ReorderMode::default(),
        }
    }
}

impl RepairOptions {
    /// The paper's configuration: heuristic on, ExpandGroup on, sequential.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Pure lazy repair (no reachability heuristic) — the configuration the
    /// paper reports as *not* improving on cautious repair.
    pub fn pure_lazy() -> Self {
        RepairOptions { restrict_to_reachable: false, ..Self::default() }
    }

    /// Algorithm 2 exactly as printed in the paper: the iterative
    /// pick-a-transition loop with `ExpandGroup`. Same outputs as the
    /// closed form; used by the ablation benches.
    pub fn iterative_step2() -> Self {
        RepairOptions { step2_closed_form: false, ..Self::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let o = RepairOptions::default();
        assert!(o.restrict_to_reachable);
        assert!(o.step2_closed_form);
        assert!(o.use_expand_group);
        assert!(!o.parallel_step2);
        assert!(o.allow_new_terminal_inside);
        assert_eq!(o.max_outer_iterations, 32);
        assert!(o.deadline.is_none(), "no deadline unless a caller opts in");
        assert_eq!(o.max_nodes, 0, "no node budget unless a caller opts in");
        assert_eq!(o.reorder, ReorderMode::Auto, "dynamic reordering is on by default");
        let p = RepairOptions::paper();
        assert_eq!(format!("{o:?}"), format!("{p:?}"));
    }

    #[test]
    fn pure_lazy_disables_only_the_heuristic() {
        let o = RepairOptions::pure_lazy();
        assert!(!o.restrict_to_reachable);
        assert!(o.step2_closed_form);
    }

    #[test]
    fn iterative_step2_keeps_expand_group() {
        let o = RepairOptions::iterative_step2();
        assert!(!o.step2_closed_form);
        assert!(o.use_expand_group);
    }

    #[test]
    fn reorder_mode_parse_roundtrip() {
        for mode in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
            assert_eq!(ReorderMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(ReorderMode::parse("bogus"), None);
        assert_eq!(ReorderMode::parse(""), None);
    }
}

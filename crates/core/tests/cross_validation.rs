//! Cross-validation: the symbolic Add-Masking of `ftrepair-core` and the
//! explicit-state reference of `ftrepair-explicit` must agree **exactly**
//! (same `ms`, same invariant, same fault-span, same final transition set)
//! on every instance small enough to enumerate — including randomly
//! generated distributed programs.

use ftrepair_bdd::SplitMix64;
use ftrepair_core::{add_masking, lazy_repair, RepairOptions};
use ftrepair_explicit::{
    add_masking as add_masking_explicit, extract, AddMaskingOptions, ExplicitProgram,
};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use std::collections::HashSet;

/// Compare a symbolic repair against the explicit reference on `prog`.
fn assert_engines_agree(prog: &mut DistributedProgram, restrict: bool) {
    let explicit = ExplicitProgram::from_symbolic(prog);
    let e = add_masking_explicit(&explicit, AddMaskingOptions { restrict_to_reachable: restrict });

    let (inv, safety) = (prog.invariant, prog.safety);
    let s = add_masking(prog, inv, &safety, restrict, &ftrepair_core::Token::unbounded()).unwrap();

    assert_eq!(s.failed, e.failed, "failure verdicts differ");
    if s.failed {
        return;
    }

    let sym_ms = extract::bdd_to_states(prog, &explicit.space, s.ms);
    assert_eq!(sym_ms, e.ms, "ms differs");

    let sym_inv = extract::bdd_to_states(prog, &explicit.space, s.invariant);
    assert_eq!(sym_inv, e.invariant, "invariant differs");

    let sym_span = extract::bdd_to_states(prog, &explicit.space, s.span);
    assert_eq!(sym_span, e.span, "fault-span differs");

    let sym_trans = extract::bdd_to_edges(prog, &explicit.space, s.trans);
    assert_eq!(sym_trans, e.trans, "final transition relations differ");
}

#[test]
fn engines_agree_on_recovery_toy() {
    let mut b = ProgramBuilder::new("toy");
    let x = b.var("x", 3);
    b.process("p", &[x], &[x]);
    let g0 = b.cx().assign_eq(x, 0);
    b.action(g0, &[(x, Update::Const(1))]);
    let g1 = b.cx().assign_eq(x, 1);
    b.action(g1, &[(x, Update::Const(0))]);
    let inv = {
        let a = b.cx().assign_eq(x, 0);
        let c = b.cx().assign_eq(x, 1);
        b.cx().mgr().or(a, c)
    };
    b.invariant(inv);
    let fg = b.cx().assign_eq(x, 1);
    b.fault_action(fg, &[(x, Update::Const(2))]);
    let mut p = b.build();
    assert_engines_agree(&mut p, true);
    assert_engines_agree(&mut p, false);
}

#[test]
fn engines_agree_on_byzantine_n1() {
    let (mut p, _) = ftrepair_casestudies::byzantine_agreement(1);
    assert_engines_agree(&mut p, true);
}

#[test]
fn engines_agree_on_chain_3x2() {
    let (mut p, _) = ftrepair_casestudies::stabilizing_chain(3, 2);
    assert_engines_agree(&mut p, true);
    assert_engines_agree(&mut p, false);
}

#[test]
fn engines_agree_on_chain_3x3() {
    // Non-power-of-two domain: dead encodings must not leak into either
    // engine's result.
    let (mut p, _) = ftrepair_casestudies::stabilizing_chain(3, 3);
    assert_engines_agree(&mut p, true);
}

#[test]
fn engines_agree_on_failstop_n1() {
    let (mut p, _) = ftrepair_casestudies::byzantine_failstop(1);
    assert_engines_agree(&mut p, true);
}

#[test]
fn engines_agree_on_tmr_2() {
    let (mut p, _) = ftrepair_casestudies::tmr(2);
    assert_engines_agree(&mut p, true);
}

#[test]
fn engines_agree_on_token_ring_3x3() {
    let (mut p, _) = ftrepair_casestudies::token_ring(3, 3);
    assert_engines_agree(&mut p, true);
    assert_engines_agree(&mut p, false);
}

#[test]
fn lazy_repair_output_passes_explicit_verifier() {
    // End-to-end: the full lazy pipeline's output, converted to explicit
    // form, satisfies the *explicit* masking verifier too.
    let (mut p, _) = ftrepair_casestudies::byzantine_agreement(1);
    let explicit = ExplicitProgram::from_symbolic(&mut p);
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    let trans = extract::bdd_to_edges(&mut p, &explicit.space, out.trans);
    let inv: HashSet<u32> = extract::bdd_to_states(&mut p, &explicit.space, out.invariant);
    let report = ftrepair_explicit::verify::verify_masking_explicit(&explicit, &trans, &inv);
    assert!(report.ok(), "{report:?}");
    // And each per-process relation is explicitly group-closed.
    for (j, proc_) in out.processes.iter().enumerate() {
        let edges = extract::bdd_to_edges(&mut p, &explicit.space, proc_.trans);
        assert!(
            ftrepair_explicit::group::is_group_closed(&explicit, j, &edges),
            "process {j} not group-closed"
        );
    }
}

// ---------------------------------------------------------------------
// Randomized cross-validation, driven by the in-tree deterministic
// [`SplitMix64`] PRNG: every run checks the same 64 instances per property
// and a failure's case index pins its exact seed.
// ---------------------------------------------------------------------

const CASES: u64 = 64;

/// Blueprint for a random 2-variable, 2-process distributed program.
#[derive(Clone, Debug)]
struct RandomProgram {
    /// Domain sizes (2..=3 each).
    sizes: [u64; 2],
    /// For each process: can it read the other variable?
    reads_other: [bool; 2],
    /// Actions: (process, guard values per readable var, target value).
    actions: Vec<(usize, u64, Option<u64>, u64)>,
    /// Invariant: membership bit per state of the ≤9-state space.
    invariant_bits: u16,
    /// Faults: (var, from value, to value).
    faults: Vec<(usize, u64, u64)>,
    /// Bad states: membership bits.
    bad_bits: u16,
}

fn gen_program(rng: &mut SplitMix64) -> RandomProgram {
    let sizes = [2 + rng.gen_range(2), 2 + rng.gen_range(2)];
    let reads_other = [rng.coin(), rng.coin()];
    let actions = (0..1 + rng.gen_index(5))
        .map(|_| {
            let g_other = if rng.coin() { Some(rng.gen_range(3)) } else { None };
            (rng.gen_index(2), rng.gen_range(3), g_other, rng.gen_range(3))
        })
        .collect();
    let invariant_bits = rng.next_u64() as u16;
    let faults = (0..rng.gen_index(4))
        .map(|_| (rng.gen_index(2), rng.gen_range(3), rng.gen_range(3)))
        .collect();
    let bad_bits = rng.next_u64() as u16;
    RandomProgram { sizes, reads_other, actions, invariant_bits, faults, bad_bits }
}

fn for_random_programs(test_tag: u64, mut case: impl FnMut(&RandomProgram, u64)) {
    for i in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(test_tag.wrapping_mul(0x1000) + i);
        let rp = gen_program(&mut rng);
        // Captured by the harness; surfaces the failing blueprint on panic.
        eprintln!("case {i}: {rp:?}");
        case(&rp, i);
    }
}

fn build(rp: &RandomProgram) -> DistributedProgram {
    let mut b = ProgramBuilder::new("random");
    let v0 = b.var("v0", rp.sizes[0]);
    let v1 = b.var("v1", rp.sizes[1]);
    let vars = [v0, v1];
    for j in 0..2 {
        let own = vars[j];
        let other = vars[1 - j];
        let read = if rp.reads_other[j] { vec![own, other] } else { vec![own] };
        b.process(format!("p{j}"), &read, &[own]);
        for &(pj, g_own, g_other, target) in &rp.actions {
            if pj != j {
                continue;
            }
            let g_own = g_own % rp.sizes[j];
            let target = target % rp.sizes[j];
            if target == g_own {
                continue; // self-loop-ish action: skip for simplicity
            }
            let mut guard = b.cx().assign_eq(own, g_own);
            if rp.reads_other[j] {
                if let Some(go) = g_other {
                    let go = go % rp.sizes[1 - j];
                    let e = b.cx().assign_eq(other, go);
                    guard = b.cx().mgr().and(guard, e);
                }
            }
            b.action(guard, &[(own, Update::Const(target))]);
        }
    }
    // Invariant and bad states from membership bits over the flat space.
    let mut inv = ftrepair_bdd::FALSE;
    let mut bad = ftrepair_bdd::FALSE;
    let mut idx = 0;
    for a in 0..rp.sizes[0] {
        for c in 0..rp.sizes[1] {
            let s = b.cx().state_cube(&[a, c]);
            if rp.invariant_bits >> idx & 1 == 1 {
                inv = b.cx().mgr().or(inv, s);
            }
            if rp.bad_bits >> idx & 1 == 1 {
                bad = b.cx().mgr().or(bad, s);
            }
            idx += 1;
        }
    }
    b.invariant(inv);
    b.bad_states(bad);
    for &(v, from, to) in &rp.faults {
        let from = from % rp.sizes[v];
        let to = to % rp.sizes[v];
        if from == to {
            continue;
        }
        let g = b.cx().assign_eq(vars[v], from);
        b.fault_action(g, &[(vars[v], Update::Const(to))]);
    }
    b.build()
}

#[test]
fn step2_agrees_with_explicit_group_filtering() {
    // Run Step 1 symbolically, then compare the symbolic Step 2 (closed
    // form) per-process outputs against the explicit-state group filter.
    for_random_programs(1, |rp, i| {
        let mut p = build(rp);
        let explicit = ExplicitProgram::from_symbolic(&mut p);
        let (inv, safety) = (p.invariant, p.safety);
        let r1 =
            add_masking(&mut p, inv, &safety, true, &ftrepair_core::Token::unbounded()).unwrap();
        if r1.failed {
            return;
        }
        let r2 =
            ftrepair_core::step2(&mut p, r1.trans, r1.span, &RepairOptions::default()).unwrap();

        let trans_edges = extract::bdd_to_edges(&mut p, &explicit.space, r1.trans);
        let span_states = extract::bdd_to_states(&mut p, &explicit.space, r1.span);
        let expected =
            ftrepair_explicit::group::step2_explicit(&explicit, &trans_edges, &span_states);
        for (j, proc_) in r2.processes.iter().enumerate() {
            let got = extract::bdd_to_edges(&mut p, &explicit.space, proc_.trans);
            assert_eq!(&got, &expected[j], "case {i}, process {j} differs");
        }
    });
}

#[test]
fn symbolic_group_matches_explicit_group() {
    // The group of each process's whole original relation, both ways.
    for_random_programs(2, |rp, i| {
        let mut p = build(rp);
        let explicit = ExplicitProgram::from_symbolic(&mut p);
        for j in 0..p.processes.len() {
            let unread = p.unreadable(j);
            let t = p.processes[j].trans;
            let g = ftrepair_program::realizability::group(&mut p.cx, &unread, t);
            let got = extract::bdd_to_edges(&mut p, &explicit.space, g);
            let expected =
                ftrepair_explicit::group::group_of_set(&explicit, j, &explicit.proc_trans[j]);
            assert_eq!(got, expected, "case {i}, process {j} group differs");
        }
    });
}

#[test]
fn engines_agree_on_random_programs() {
    for_random_programs(3, |rp, _| {
        let mut p = build(rp);
        assert_engines_agree(&mut p, true);
        let mut p2 = build(rp);
        assert_engines_agree(&mut p2, false);
    });
}

#[test]
fn lazy_outputs_always_verify_or_fail() {
    // Whatever the input, lazy repair either declares failure or produces a
    // program passing both independent verifiers.
    for_random_programs(4, |rp, i| {
        let mut p = build(rp);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        if !out.failed {
            let (m, r) = ftrepair_core::verify::verify_outcome(&mut p, &out);
            assert!(m.ok(), "case {i} masking: {m:?}");
            assert!(r.ok(), "case {i} realizability: {r:?}");
        }
    });
}

#[test]
fn cautious_outputs_always_verify_or_fail() {
    for_random_programs(5, |rp, i| {
        let mut p = build(rp);
        let out = ftrepair_core::cautious_repair(&mut p, &RepairOptions::default()).unwrap();
        if !out.failed {
            let lazy_shape = ftrepair_core::LazyOutcome {
                processes: out.processes.clone(),
                invariant: out.invariant,
                span: out.span,
                trans: out.trans,
                failed: out.failed,
                stats: out.stats.clone(),
            };
            let (m, r) = ftrepair_core::verify::verify_outcome(&mut p, &lazy_shape);
            assert!(m.ok(), "case {i} masking: {m:?}");
            assert!(r.ok(), "case {i} realizability: {r:?}");
        }
    });
}

//! Policy-level behavior of the repair options: the terminal-state policy,
//! Step 2 strategy equivalence, and heuristic effects on real case studies.

use ftrepair_casestudies::{byzantine::BOT, byzantine_agreement};
use ftrepair_core::{lazy_repair, verify::verify_outcome, RepairAborted, RepairOptions};

#[test]
fn default_policy_keeps_initial_states_in_the_invariant() {
    // With new-terminal states accepted (default), the repaired BA keeps
    // the all-undecided initial states — a byzantine peer showing a
    // conflicting finalized decision simply stops the blocked process.
    let (mut p, _) = byzantine_agreement(2);
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    for dgv in 0..2 {
        let init = p.cx.state_cube(&[0, dgv, 0, BOT, 0, 0, BOT, 0]);
        assert!(
            p.cx.mgr().leq(init, out.invariant),
            "initial state with d.g={dgv} must stay legitimate"
        );
    }
    let (m, r) = verify_outcome(&mut p, &out);
    assert!(m.ok() && r.ok());
}

#[test]
fn strict_policy_still_verifies_but_shrinks_more() {
    let (mut p, _) = byzantine_agreement(2);
    let default_out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    let strict_opts = RepairOptions { allow_new_terminal_inside: false, ..Default::default() };
    let strict_out = lazy_repair(&mut p, &strict_opts).unwrap();
    assert!(!default_out.failed && !strict_out.failed);

    let n_default = p.cx.count_states(default_out.invariant);
    let n_strict = p.cx.count_states(strict_out.invariant);
    assert!(
        n_strict < n_default,
        "strict policy must evict blocked states: {n_strict} vs {n_default}"
    );

    // Both pass the base checks; the strict one additionally passes the
    // strict verifier.
    let (m_default, r_default) = verify_outcome(&mut p, &default_out);
    assert!(m_default.ok() && r_default.ok());
    assert!(!m_default.ok_strict(), "the default policy deliberately accepts new terminal states");
    let (m_strict, r_strict) = verify_outcome(&mut p, &strict_out);
    assert!(m_strict.ok_strict(), "{m_strict:?}");
    assert!(r_strict.ok());
}

#[test]
fn step2_strategies_produce_identical_repairs_on_byzantine() {
    let (mut p, _) = byzantine_agreement(2);
    let closed = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    let iterative = lazy_repair(&mut p, &RepairOptions::iterative_step2()).unwrap();
    assert!(!closed.failed && !iterative.failed);
    assert_eq!(closed.invariant, iterative.invariant);
    assert_eq!(closed.trans, iterative.trans);
    for (a, b) in closed.processes.iter().zip(&iterative.processes) {
        assert_eq!(a.trans, b.trans, "process {} differs across strategies", a.name);
    }
    // The closed form gets there in far fewer picks.
    assert!(closed.stats.step2_picks < iterative.stats.step2_picks);
}

#[test]
fn heuristic_off_explores_a_larger_span() {
    let (mut p, _) = byzantine_agreement(2);
    let with = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    let without = lazy_repair(&mut p, &RepairOptions::pure_lazy()).unwrap();
    assert!(!with.failed && !without.failed);
    let span_with = p.cx.count_states(with.span);
    let span_without = p.cx.count_states(without.span);
    assert!(
        span_with <= span_without,
        "the heuristic restricts the span: {span_with} vs {span_without}"
    );
    let (m, r) = verify_outcome(&mut p, &without);
    assert!(m.ok() && r.ok());
}

#[test]
fn parallel_step2_reproduces_sequential_on_byzantine() {
    let (mut p, _) = byzantine_agreement(2);
    let seq = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    let par =
        lazy_repair(&mut p, &RepairOptions { parallel_step2: true, ..Default::default() }).unwrap();
    assert!(!seq.failed && !par.failed);
    assert_eq!(seq.trans, par.trans);
    assert_eq!(seq.invariant, par.invariant);
}

#[test]
fn tiny_node_budget_aborts_with_resource_exhausted() {
    // A budget far below the program's own BDDs cannot be rescued by any
    // GC: the first governance checkpoint latches exhaustion and the next
    // loop boundary unwinds cleanly — no abort-by-OOM.
    let (mut p, _) = byzantine_agreement(2);
    let starved = RepairOptions { max_nodes: 16, ..Default::default() };
    assert_eq!(lazy_repair(&mut p, &starved).unwrap_err(), RepairAborted::ResourceExhausted);

    // The budget bounds whether a run finishes, never what it computes:
    // the same manager, re-armed unbudgeted, completes and verifies.
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    let (m, r) = verify_outcome(&mut p, &out);
    assert!(m.ok() && r.ok());
}

#[test]
fn node_budget_failure_is_also_clean_under_reorder_none() {
    // The budget checkpoint rides maybe_reorder call sites but must fire
    // in every reorder mode, including None.
    let (mut p, _) = byzantine_agreement(2);
    let starved = RepairOptions {
        max_nodes: 16,
        reorder: ftrepair_core::ReorderMode::None,
        ..Default::default()
    };
    assert_eq!(lazy_repair(&mut p, &starved).unwrap_err(), RepairAborted::ResourceExhausted);
}

//! Warm-start parity: seeding Step 1's reachability from a cached
//! neighbor's invariant/fault-span BDDs must not change what lazy repair
//! computes — only how fast it converges. Checked through the explicit
//! oracle on enumerable instances, both for same-spec seeds (the disk-hit
//! promotion path) and for seeds taken from a *different* (one-action-
//! edited) spec's repair (the near-key warm-start path).

use ftrepair_core::{lazy_repair, lazy_repair_warm, Token, WarmSeeds};
use ftrepair_core::{verify::verify_outcome, LazyOutcome, RepairOptions};
use ftrepair_explicit::{extract, ExplicitProgram};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_telemetry::Telemetry;
use std::collections::HashSet;

/// Everything observable about one repair, in explicit form.
#[derive(Debug, PartialEq)]
struct Shape {
    invariant: HashSet<u32>,
    span: HashSet<u32>,
    trans: Vec<(u32, u32)>,
}

fn shape(
    prog: &mut DistributedProgram,
    space: &ftrepair_explicit::StateSpace,
    out: &LazyOutcome,
) -> Shape {
    Shape {
        invariant: extract::bdd_to_states(prog, space, out.invariant),
        span: extract::bdd_to_states(prog, space, out.span),
        trans: extract::bdd_to_edges(prog, space, out.trans),
    }
}

/// A counter that faults walk up (1→2→3) and the process walks down —
/// recovery has real diameter, so the reachability phase does actual work.
fn counter_prog(extra_action: bool) -> DistributedProgram {
    let mut b = ProgramBuilder::new(if extra_action { "counter_edited" } else { "counter" });
    let x = b.var("x", 4);
    b.process("p", &[x], &[x]);
    let g0 = b.cx().assign_eq(x, 0);
    b.action(g0, &[(x, Update::Const(1))]);
    let g1 = b.cx().assign_eq(x, 1);
    b.action(g1, &[(x, Update::Const(0))]);
    if extra_action {
        // The one-action edit: an extra legal move inside the invariant.
        let g = b.cx().assign_eq(x, 1);
        b.action(g, &[(x, Update::Const(1))]);
    }
    let inv = {
        let a = b.cx().assign_eq(x, 0);
        let c = b.cx().assign_eq(x, 1);
        b.cx().mgr().or(a, c)
    };
    b.invariant(inv);
    let f1 = b.cx().assign_eq(x, 1);
    b.fault_action(f1, &[(x, Update::Const(2))]);
    let f2 = b.cx().assign_eq(x, 2);
    b.fault_action(f2, &[(x, Update::Const(3))]);
    b.build()
}

/// Cold-repair `donor` and export its invariant/span artifacts — what the
/// disk store would persist.
fn donor_artifacts(
    mut donor: DistributedProgram,
) -> (ftrepair_bdd::SerializedBdd, ftrepair_bdd::SerializedBdd) {
    let out = lazy_repair(&mut donor, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    (donor.cx.mgr_ref().export(out.invariant), donor.cx.mgr_ref().export(out.span))
}

/// Import donor artifacts into `prog`'s manager and run a warm repair.
fn warm_repair(
    prog: &mut DistributedProgram,
    artifacts: &(ftrepair_bdd::SerializedBdd, ftrepair_bdd::SerializedBdd),
    tele: &Telemetry,
) -> LazyOutcome {
    let invariant = prog.cx.mgr().try_import(&artifacts.0).expect("invariant imports");
    let span = prog.cx.mgr().try_import(&artifacts.1).expect("span imports");
    let seeds = WarmSeeds { invariant: Some(invariant), span: Some(span) };
    let out = lazy_repair_warm(prog, &RepairOptions::default(), tele, &Token::unbounded(), &seeds)
        .expect("no deadline configured");
    assert!(!out.failed);
    out
}

#[test]
fn same_spec_seeds_reproduce_the_cold_repair_exactly() {
    // Cold baseline.
    let mut cold_prog = counter_prog(false);
    let space = ExplicitProgram::from_symbolic(&mut cold_prog).space;
    let cold = lazy_repair(&mut cold_prog, &RepairOptions::default()).unwrap();
    assert!(!cold.failed);
    let cold_shape = shape(&mut cold_prog, &space, &cold);

    // Warm from the same spec's own artifacts (what a disk hit re-imports).
    let artifacts = donor_artifacts(counter_prog(false));
    let mut warm_prog = counter_prog(false);
    let tele = Telemetry::new();
    let warm = warm_repair(&mut warm_prog, &artifacts, &tele);
    let warm_shape = shape(&mut warm_prog, &space, &warm);

    assert_eq!(warm_shape, cold_shape, "same-spec warm start changed the repair");
    let snap = tele.snapshot();
    assert_eq!(snap.counter("repair.warm_starts"), 1);
    assert_eq!(snap.counter("repair.warm_seeded_reachability"), 1);
    let (masking, realizability) = verify_outcome(&mut warm_prog, &warm);
    assert!(masking.ok(), "{masking:?}");
    assert!(realizability.ok(), "{realizability:?}");
}

#[test]
fn one_action_edit_warm_start_matches_cold_via_oracle() {
    // The near-key path: the donor is the *unedited* spec; the job is the
    // edited one. Seeds over-approximate, Phase 4 shrinks, and the repair
    // must come out oracle-identical to the edited spec's cold repair.
    let artifacts = donor_artifacts(counter_prog(false));

    let mut cold_prog = counter_prog(true);
    let space = ExplicitProgram::from_symbolic(&mut cold_prog).space;
    let cold = lazy_repair(&mut cold_prog, &RepairOptions::default()).unwrap();
    assert!(!cold.failed);
    let cold_shape = shape(&mut cold_prog, &space, &cold);

    let mut warm_prog = counter_prog(true);
    let tele = Telemetry::new();
    let warm = warm_repair(&mut warm_prog, &artifacts, &tele);
    let warm_shape = shape(&mut warm_prog, &space, &warm);

    assert_eq!(warm_shape, cold_shape, "cross-spec warm start changed the repair");
    let (masking, realizability) = verify_outcome(&mut warm_prog, &warm);
    assert!(masking.ok(), "{masking:?}");
    assert!(realizability.ok(), "{realizability:?}");
}

#[test]
fn garbage_seeds_are_sound() {
    // Soundness does not depend on the seed being meaningful: seed with the
    // whole universe and with an unrelated cube — the repair must still
    // verify and oracle-match the cold baseline (the span is clamped to
    // `universe − ms` and Phase 4 shrinks it back down).
    let mut cold_prog = counter_prog(false);
    let space = ExplicitProgram::from_symbolic(&mut cold_prog).space;
    let cold = lazy_repair(&mut cold_prog, &RepairOptions::default()).unwrap();
    let cold_shape = shape(&mut cold_prog, &space, &cold);

    for tag in ["universe", "cube"] {
        let mut prog = counter_prog(false);
        let seed = match tag {
            "universe" => prog.cx.state_universe(),
            _ => {
                let x = prog.cx.find_var("x").unwrap();
                prog.cx.assign_eq(x, 3)
            }
        };
        let seeds = WarmSeeds { invariant: None, span: Some(seed) };
        let out = lazy_repair_warm(
            &mut prog,
            &RepairOptions::default(),
            &Telemetry::off(),
            &Token::unbounded(),
            &seeds,
        )
        .unwrap();
        assert!(!out.failed, "seed={tag}");
        let got = shape(&mut prog, &space, &out);
        assert_eq!(got, cold_shape, "seed={tag} changed the repair");
        let (masking, realizability) = verify_outcome(&mut prog, &out);
        assert!(masking.ok(), "seed={tag}: {masking:?}");
        assert!(realizability.ok(), "seed={tag}: {realizability:?}");
    }
}

#[test]
fn token_ring_warm_start_parity() {
    // A multi-process case study, same-spec seeding, full shape parity.
    let factory = || ftrepair_casestudies::token_ring(3, 3).0;
    let mut cold_prog = factory();
    let space = ExplicitProgram::from_symbolic(&mut cold_prog).space;
    let cold = lazy_repair(&mut cold_prog, &RepairOptions::default()).unwrap();
    assert!(!cold.failed);
    let cold_shape = shape(&mut cold_prog, &space, &cold);

    let artifacts = donor_artifacts(factory());
    let mut warm_prog = factory();
    let warm = warm_repair(&mut warm_prog, &artifacts, &Telemetry::off());
    let warm_shape = shape(&mut warm_prog, &space, &warm);
    assert_eq!(warm_shape, cold_shape);
    let (masking, realizability) = verify_outcome(&mut warm_prog, &warm);
    assert!(masking.ok(), "{masking:?}");
    assert!(realizability.ok(), "{realizability:?}");
}

#[test]
fn empty_seeds_are_the_cold_path() {
    let mut a = counter_prog(false);
    let out_a = lazy_repair_warm(
        &mut a,
        &RepairOptions::default(),
        &Telemetry::off(),
        &Token::unbounded(),
        &WarmSeeds::none(),
    )
    .unwrap();
    let mut b = counter_prog(false);
    let out_b = lazy_repair(&mut b, &RepairOptions::default()).unwrap();
    assert_eq!(out_a.failed, out_b.failed);
    assert_eq!(a.cx.count_states(out_a.invariant), b.cx.count_states(out_b.invariant));
    assert_eq!(a.cx.count_states(out_a.span), b.cx.count_states(out_b.span));
}

//! Reorder parity: variable reordering permutes the BDD order, never a
//! function, so lazy repair must compute the *same* repair under every
//! [`ReorderMode`]. Verified two ways on instances small enough to
//! enumerate: exact agreement of the extracted state/edge sets through the
//! `ftrepair-explicit` oracle, and identical sat-counts of every output
//! set. A third test arms the automatic trigger far below its production
//! threshold so garbage collections and sifts fire *mid-repair* on toy
//! instances — a direct check of the checkpoints' rooting discipline.

use ftrepair_core::{lazy_repair, ReorderMode, RepairOptions};
use ftrepair_explicit::{extract, ExplicitProgram};
use ftrepair_program::DistributedProgram;
use std::collections::HashSet;

/// Everything observable about one repair, in explicit form.
#[derive(Debug, PartialEq)]
struct Shape {
    invariant: HashSet<u32>,
    span: HashSet<u32>,
    trans: Vec<(u32, u32)>,
    per_process: Vec<Vec<(u32, u32)>>,
}

/// Run lazy repair on a fresh instance and enumerate its outputs.
fn shape_of(mut prog: DistributedProgram, opts: &RepairOptions) -> Shape {
    let explicit = ExplicitProgram::from_symbolic(&mut prog);
    let out = lazy_repair(&mut prog, opts).expect("no deadline configured");
    assert!(!out.failed, "{} unexpectedly failed to repair", prog.name);
    Shape {
        invariant: extract::bdd_to_states(&mut prog, &explicit.space, out.invariant),
        span: extract::bdd_to_states(&mut prog, &explicit.space, out.span),
        trans: extract::bdd_to_edges(&mut prog, &explicit.space, out.trans),
        per_process: out
            .processes
            .iter()
            .map(|p| extract::bdd_to_edges(&mut prog, &explicit.space, p.trans))
            .collect(),
    }
}

/// Assert that all three modes produce the identical repair on `factory`'s
/// instance, and return the baseline for further checks.
fn assert_modes_agree(factory: impl Fn() -> DistributedProgram) -> Shape {
    let baseline = shape_of(factory(), &RepairOptions::default().with_reorder(ReorderMode::None));
    for mode in [ReorderMode::Sift, ReorderMode::Auto] {
        let got = shape_of(factory(), &RepairOptions::default().with_reorder(mode));
        assert_eq!(got, baseline, "reorder={} changed the repair", mode.as_str());
    }
    baseline
}

trait WithReorder {
    fn with_reorder(self, mode: ReorderMode) -> Self;
}

impl WithReorder for RepairOptions {
    fn with_reorder(self, mode: ReorderMode) -> Self {
        RepairOptions { reorder: mode, ..self }
    }
}

#[test]
fn modes_agree_on_token_ring() {
    let shape = assert_modes_agree(|| ftrepair_casestudies::token_ring(3, 3).0);
    assert!(!shape.invariant.is_empty(), "token ring repair has a non-trivial invariant");
}

#[test]
fn modes_agree_on_byzantine_failstop() {
    let shape = assert_modes_agree(|| ftrepair_casestudies::byzantine_failstop(1).0);
    assert!(!shape.invariant.is_empty(), "fail-stop repair has a non-trivial invariant");
}

#[test]
fn sat_counts_agree_beyond_enumeration() {
    // Sizes past what the oracle can enumerate: compare the model counts of
    // every output set instead. Counts are order-independent, so any
    // reorder-induced corruption (a function silently changed by a swap)
    // shows up here.
    let factory = || ftrepair_casestudies::token_ring(6, 6).0;
    let mut counts = Vec::new();
    for mode in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
        let mut prog = factory();
        let out = lazy_repair(&mut prog, &RepairOptions::default().with_reorder(mode)).unwrap();
        assert!(!out.failed);
        let inv = prog.cx.count_states(out.invariant);
        let span = prog.cx.count_states(out.span);
        counts.push((mode.as_str(), inv, span));
    }
    let (_, inv0, span0) = counts[0];
    assert!(inv0 > 0.0 && span0 >= inv0, "baseline shape: {counts:?}");
    for &(mode, inv, span) in &counts[1..] {
        assert_eq!((inv, span), (inv0, span0), "reorder={mode} changed sat-counts: {counts:?}");
    }
}

#[test]
fn forced_low_threshold_trigger_preserves_the_repair() {
    // Arm the automatic trigger at a toy threshold so it fires constantly
    // during the repair — every checkpoint then collects (and often sifts)
    // with the arena at a few hundred nodes. The production threshold never
    // fires on instances this small, so this is the only coverage of
    // mid-repair reordering on an oracle-checkable instance. `reorder:
    // None` keeps `lazy_repair` from re-configuring the manager; the base
    // roots must then be protected by hand, exactly as `configure` would.
    let baseline = shape_of(
        ftrepair_casestudies::token_ring(3, 3).0,
        &RepairOptions::default().with_reorder(ReorderMode::None),
    );

    let mut prog = ftrepair_casestudies::token_ring(3, 3).0;
    let explicit = ExplicitProgram::from_symbolic(&mut prog);
    prog.cx.configure_reorder(Some(64));
    prog.protect_base();
    let out = lazy_repair(&mut prog, &RepairOptions::default().with_reorder(ReorderMode::None))
        .expect("no deadline configured");
    assert!(!out.failed);

    let stats = prog.cx.mgr_ref().stats();
    assert!(stats.gc_runs > 0, "trigger never fired; threshold too high for this instance");

    let got = Shape {
        invariant: extract::bdd_to_states(&mut prog, &explicit.space, out.invariant),
        span: extract::bdd_to_states(&mut prog, &explicit.space, out.span),
        trans: extract::bdd_to_edges(&mut prog, &explicit.space, out.trans),
        per_process: out
            .processes
            .iter()
            .map(|p| extract::bdd_to_edges(&mut prog, &explicit.space, p.trans))
            .collect(),
    };
    assert_eq!(got, baseline, "mid-repair reordering changed the repair");
}

//! Microbenchmarks for the core BDD operations on transition-relation-shaped
//! workloads (interleaved variables, mod-2^k counters) — the op mix the
//! repair fixpoints are made of.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftrepair_bdd::{Manager, NodeId};

/// Build the transition relation of a k-bit binary counter over interleaved
/// current (even) / next (odd) levels.
fn counter_relation(m: &mut Manager, bits: u32) -> NodeId {
    let mut rel = ftrepair_bdd::TRUE;
    let mut carry = ftrepair_bdd::TRUE; // increment propagates while carry
    for i in 0..bits {
        let cur = m.var(2 * i);
        let next = m.var(2 * i + 1);
        // next = cur XOR carry
        let x = m.xor(cur, carry);
        let bit_ok = m.iff(next, x);
        rel = m.and(rel, bit_ok);
        carry = m.and(carry, cur);
    }
    rel
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_ops");
    for &bits in &[16u32, 32, 64] {
        group.bench_with_input(BenchmarkId::new("build_counter", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut m = Manager::new(2 * bits);
                counter_relation(&mut m, bits)
            })
        });
        group.bench_with_input(BenchmarkId::new("image_sweep", bits), &bits, |b, &bits| {
            // One BFS sweep of the counter's full 2^bits cycle would be
            // absurd; measure a fixed number of image steps instead.
            b.iter(|| {
                let mut m = Manager::new(2 * bits);
                let rel = counter_relation(&mut m, bits);
                let cur: Vec<u32> = (0..bits).map(|i| 2 * i).collect();
                let vs = m.varset(&cur);
                let map: Vec<(u32, u32)> = (0..bits).map(|i| (2 * i + 1, 2 * i)).collect();
                let vm = m.varmap(&map);
                let zeros: Vec<(u32, bool)> = (0..bits).map(|i| (2 * i, false)).collect();
                let mut s = m.cube(&zeros);
                for _ in 0..64 {
                    let img = m.and_exists(s, rel, vs);
                    s = m.rename(img, vm);
                }
                s
            })
        });
        group.bench_with_input(BenchmarkId::new("exists_half", bits), &bits, |b, &bits| {
            b.iter(|| {
                let mut m = Manager::new(2 * bits);
                let rel = counter_relation(&mut m, bits);
                let half: Vec<u32> = (0..bits / 2).map(|i| 2 * i).collect();
                let vs = m.varset(&half);
                m.exists(rel, vs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

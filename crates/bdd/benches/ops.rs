//! Microbenchmarks for the core BDD operations on transition-relation-shaped
//! workloads (interleaved variables, mod-2^k counters) — the op mix the
//! repair fixpoints are made of.
//!
//! Self-contained timing harness (median of repeated runs after warmup) so
//! the bench builds offline; run with `cargo bench -p ftrepair-bdd`.

use ftrepair_bdd::{Manager, NodeId};
use std::time::{Duration, Instant};

/// Build the transition relation of a k-bit binary counter over interleaved
/// current (even) / next (odd) levels.
fn counter_relation(m: &mut Manager, bits: u32) -> NodeId {
    let mut rel = ftrepair_bdd::TRUE;
    let mut carry = ftrepair_bdd::TRUE; // increment propagates while carry
    for i in 0..bits {
        let cur = m.var(2 * i);
        let next = m.var(2 * i + 1);
        // next = cur XOR carry
        let x = m.xor(cur, carry);
        let bit_ok = m.iff(next, x);
        rel = m.and(rel, bit_ok);
        carry = m.and(carry, cur);
    }
    rel
}

/// Time `f` (median over `runs` after one warmup) and print one line.
fn bench<T>(name: &str, runs: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let (min, max) = (times[0], times[times.len() - 1]);
    println!("{name:<28} median {median:>10.3?}   min {min:>10.3?}   max {max:>10.3?}");
}

fn main() {
    for &bits in &[16u32, 32, 64] {
        bench(&format!("build_counter/{bits}"), 10, || {
            let mut m = Manager::new(2 * bits);
            counter_relation(&mut m, bits)
        });
        bench(&format!("image_sweep/{bits}"), 10, || {
            // One BFS sweep of the counter's full 2^bits cycle would be
            // absurd; measure a fixed number of image steps instead.
            let mut m = Manager::new(2 * bits);
            let rel = counter_relation(&mut m, bits);
            let cur: Vec<u32> = (0..bits).map(|i| 2 * i).collect();
            let vs = m.varset(&cur);
            let map: Vec<(u32, u32)> = (0..bits).map(|i| (2 * i + 1, 2 * i)).collect();
            let vm = m.varmap(&map);
            let zeros: Vec<(u32, bool)> = (0..bits).map(|i| (2 * i, false)).collect();
            let mut s = m.cube(&zeros);
            for _ in 0..64 {
                let img = m.and_exists(s, rel, vs);
                s = m.rename(img, vm);
            }
            s
        });
        bench(&format!("exists_half/{bits}"), 10, || {
            let mut m = Manager::new(2 * bits);
            let rel = counter_relation(&mut m, bits);
            let half: Vec<u32> = (0..bits / 2).map(|i| 2 * i).collect();
            let vs = m.varset(&half);
            m.exists(rel, vs)
        });
    }
}

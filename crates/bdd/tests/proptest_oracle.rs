//! Property-based validation of the BDD engine against a truth-table oracle.
//!
//! Random boolean expressions over up to 6 variables are evaluated two ways:
//! once through the BDD engine and once directly on each of the 2^n
//! assignments. Canonicity means semantically equal functions must be the
//! *same node*, which these tests also exploit.
//!
//! The generator runs on the in-tree deterministic [`SplitMix64`] PRNG with
//! per-test fixed seeds: failures reproduce exactly, with the offending
//! expression printed by the assertion message.

use ftrepair_bdd::{Manager, NodeId, SplitMix64, FALSE, TRUE};

const NVARS: u32 = 6;
const CASES: u64 = 128;

/// A random boolean expression.
#[derive(Clone, Debug)]
enum Expr {
    Const(bool),
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Random expression of depth ≤ `depth`, biased toward internal nodes
/// (mirrors the old proptest `prop_recursive(5, 64, 3, …)` shape).
fn gen_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || rng.gen_range(8) == 0 {
        return if rng.coin() {
            Expr::Var(rng.gen_range(NVARS as u64) as u32)
        } else {
            Expr::Const(rng.coin())
        };
    }
    let sub = |rng: &mut SplitMix64| Box::new(gen_expr(rng, depth - 1));
    match rng.gen_range(5) {
        0 => Expr::Not(sub(rng)),
        1 => Expr::And(sub(rng), sub(rng)),
        2 => Expr::Or(sub(rng), sub(rng)),
        3 => Expr::Xor(sub(rng), sub(rng)),
        _ => Expr::Ite(sub(rng), sub(rng), sub(rng)),
    }
}

fn to_bdd(m: &mut Manager, e: &Expr) -> NodeId {
    to_bdd_with(m, e, 1, 0)
}

/// Build with levels `stride * v + offset`, so the same helper serves both
/// the plain tests and the interleaved rename round trip.
fn to_bdd_with(m: &mut Manager, e: &Expr, stride: u32, offset: u32) -> NodeId {
    match e {
        Expr::Const(true) => TRUE,
        Expr::Const(false) => FALSE,
        Expr::Var(v) => m.var(stride * *v + offset),
        Expr::Not(a) => {
            let fa = to_bdd_with(m, a, stride, offset);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let fa = to_bdd_with(m, a, stride, offset);
            let fb = to_bdd_with(m, b, stride, offset);
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let fa = to_bdd_with(m, a, stride, offset);
            let fb = to_bdd_with(m, b, stride, offset);
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let fa = to_bdd_with(m, a, stride, offset);
            let fb = to_bdd_with(m, b, stride, offset);
            m.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let fa = to_bdd_with(m, a, stride, offset);
            let fb = to_bdd_with(m, b, stride, offset);
            let fc = to_bdd_with(m, c, stride, offset);
            m.ite(fa, fb, fc)
        }
    }
}

fn eval_expr(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(v) => a[*v as usize],
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) ^ eval_expr(y, a),
        Expr::Ite(x, y, z) => {
            if eval_expr(x, a) {
                eval_expr(y, a)
            } else {
                eval_expr(z, a)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| (bits >> i) & 1 == 1).collect())
}

/// A random subset of 0..4 distinct variables to quantify over.
fn gen_quantified(rng: &mut SplitMix64) -> Vec<u32> {
    let n = rng.gen_range(4);
    let mut vs: Vec<u32> = (0..n).map(|_| rng.gen_range(NVARS as u64) as u32).collect();
    vs.sort_unstable();
    vs.dedup();
    vs
}

/// Run `case` once per seed; the seed namespaces each test so streams don't
/// correlate between tests.
fn for_cases(test_tag: u64, mut case: impl FnMut(&mut SplitMix64, u64)) {
    for i in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(test_tag.wrapping_mul(0x1000) + i);
        case(&mut rng, i);
    }
}

#[test]
fn bdd_matches_truth_table() {
    for_cases(1, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        for a in assignments() {
            assert_eq!(m.eval(f, &a), eval_expr(&e, &a), "case {i}: {e:?} at {a:?}");
        }
    });
}

#[test]
fn sat_count_matches_enumeration() {
    for_cases(2, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let expected = assignments().filter(|a| eval_expr(&e, a)).count();
        assert_eq!(m.sat_count(f), expected as f64, "case {i}: {e:?}");
    });
}

#[test]
fn double_negation_is_identity_node() {
    for_cases(3, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let nf = m.not(f);
        assert_eq!(m.not(nf), f, "case {i}: {e:?}");
    });
}

#[test]
fn canonicity_semantic_eq_implies_same_node() {
    for_cases(4, |rng, i| {
        let e1 = gen_expr(rng, 4);
        let e2 = gen_expr(rng, 4);
        let mut m = Manager::new(NVARS);
        let f1 = to_bdd(&mut m, &e1);
        let f2 = to_bdd(&mut m, &e2);
        let semantically_equal = assignments().all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        assert_eq!(f1 == f2, semantically_equal, "case {i}: {e1:?} vs {e2:?}");
    });
}

#[test]
fn exists_matches_enumeration() {
    for_cases(5, |rng, i| {
        let e = gen_expr(rng, 4);
        let quantified = gen_quantified(rng);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vs = m.varset(&quantified);
        let ex = m.exists(f, vs);
        for a in assignments() {
            // ∃: some completion over quantified vars satisfies e.
            let nq = quantified.len() as u32;
            let found = (0..(1u32 << nq)).any(|combo| {
                let mut a2 = a.clone();
                for (k, &v) in quantified.iter().enumerate() {
                    a2[v as usize] = (combo >> k) & 1 == 1;
                }
                eval_expr(&e, &a2)
            });
            assert_eq!(m.eval(ex, &a), found, "case {i}: ∃{quantified:?}. {e:?} at {a:?}");
        }
    });
}

#[test]
fn forall_is_dual_of_exists() {
    for_cases(6, |rng, i| {
        let e = gen_expr(rng, 4);
        let quantified = gen_quantified(rng);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vs = m.varset(&quantified);
        let fa = m.forall(f, vs);
        let nf = m.not(f);
        let ex = m.exists(nf, vs);
        let dual = m.not(ex);
        assert_eq!(fa, dual, "case {i}: ∀{quantified:?}. {e:?}");
    });
}

#[test]
fn and_exists_is_fused_relational_product() {
    for_cases(7, |rng, i| {
        let e1 = gen_expr(rng, 4);
        let e2 = gen_expr(rng, 4);
        let quantified = gen_quantified(rng);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e1);
        let g = to_bdd(&mut m, &e2);
        let vs = m.varset(&quantified);
        let fused = m.and_exists(f, g, vs);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, vs);
        assert_eq!(fused, unfused, "case {i}: ∃{quantified:?}. {e1:?} ∧ {e2:?}");
    });
}

#[test]
fn restrict_matches_semantics() {
    for_cases(8, |rng, i| {
        let e = gen_expr(rng, 5);
        let var = rng.gen_range(NVARS as u64) as u32;
        let val = rng.coin();
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let r = m.restrict(f, &[(var, val)]);
        for mut a in assignments() {
            a[var as usize] = val;
            assert_eq!(m.eval(r, &a), eval_expr(&e, &a), "case {i}: {e:?}|{var}={val}");
        }
        // The restricted function no longer depends on `var`.
        assert!(!m.support(r).contains(&var), "case {i}: {e:?}|{var}={val}");
    });
}

#[test]
fn export_import_roundtrip() {
    for_cases(9, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m1 = Manager::new(NVARS);
        let f = to_bdd(&mut m1, &e);
        let s = m1.export(f);
        let mut m2 = Manager::new(NVARS);
        let g = m2.import(&s);
        for a in assignments() {
            assert_eq!(m2.eval(g, &a), eval_expr(&e, &a), "case {i}: {e:?}");
        }
        // Round trip back into the original manager hits the same node.
        assert_eq!(m1.import(&m2.export(g)), f, "case {i}: {e:?}");
    });
}

#[test]
fn gc_preserves_roots() {
    for_cases(10, |rng, i| {
        let e1 = gen_expr(rng, 5);
        let e2 = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let keep = to_bdd(&mut m, &e1);
        let _garbage = to_bdd(&mut m, &e2);
        m.gc([keep]);
        for a in assignments() {
            assert_eq!(m.eval(keep, &a), eval_expr(&e1, &a), "case {i}: {e1:?}");
        }
        // The manager still functions after GC: rebuild e1 and get the same node.
        let rebuilt = to_bdd(&mut m, &e1);
        assert_eq!(rebuilt, keep, "case {i}: {e1:?}");
    });
}

#[test]
fn pick_minterm_is_satisfying() {
    for_cases(11, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vars: Vec<u32> = (0..NVARS).collect();
        match m.pick_minterm(f, &vars) {
            None => assert_eq!(f, FALSE, "case {i}: {e:?}"),
            Some(a) => assert!(m.eval(f, &a), "case {i}: {e:?} at {a:?}"),
        }
    });
}

#[test]
fn cube_union_rebuilds_function() {
    for_cases(12, |rng, i| {
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let paths: Vec<_> = m.cubes(f).collect();
        let mut rebuilt = FALSE;
        for p in &paths {
            let c = m.cube(p);
            rebuilt = m.or(rebuilt, c);
        }
        assert_eq!(rebuilt, f, "case {i}: {e:?}");
    });
}

#[test]
fn rename_up_down_roundtrip() {
    for_cases(13, |rng, i| {
        // Interleaved shift: even→odd then odd→even must be identity.
        let e = gen_expr(rng, 5);
        let mut m = Manager::new(2 * NVARS);
        let f = to_bdd_with(&mut m, &e, 2, 0);
        let up_pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (2 * v, 2 * v + 1)).collect();
        let down_pairs: Vec<(u32, u32)> = (0..NVARS).map(|v| (2 * v + 1, 2 * v)).collect();
        let up = m.varmap(&up_pairs);
        let down = m.varmap(&down_pairs);
        let g = m.rename(f, up);
        assert_eq!(m.rename(g, down), f, "case {i}: {e:?}");
    });
}

//! Property-based validation of the BDD engine against a truth-table oracle.
//!
//! Random boolean expressions over up to 6 variables are evaluated two ways:
//! once through the BDD engine and once directly on each of the 2^n
//! assignments. Canonicity means semantically equal functions must be the
//! *same node*, which these tests also exploit.

use ftrepair_bdd::{Manager, NodeId, FALSE, TRUE};
use proptest::prelude::*;

const NVARS: u32 = 6;

/// A random boolean expression.
#[derive(Clone, Debug)]
enum Expr {
    Const(bool),
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Expr::Const),
        (0..NVARS).prop_map(Expr::Var),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Ite(Box::new(a), Box::new(b), Box::new(c))),
        ]
    })
}

fn to_bdd(m: &mut Manager, e: &Expr) -> NodeId {
    match e {
        Expr::Const(true) => TRUE,
        Expr::Const(false) => FALSE,
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let fa = to_bdd(m, a);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let (fa, fb) = (to_bdd(m, a), to_bdd(m, b));
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (to_bdd(m, a), to_bdd(m, b));
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let (fa, fb) = (to_bdd(m, a), to_bdd(m, b));
            m.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let (fa, fb, fc) = (to_bdd(m, a), to_bdd(m, b), to_bdd(m, c));
            m.ite(fa, fb, fc)
        }
    }
}

fn eval_expr(e: &Expr, a: &[bool]) -> bool {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(v) => a[*v as usize],
        Expr::Not(x) => !eval_expr(x, a),
        Expr::And(x, y) => eval_expr(x, a) && eval_expr(y, a),
        Expr::Or(x, y) => eval_expr(x, a) || eval_expr(y, a),
        Expr::Xor(x, y) => eval_expr(x, a) ^ eval_expr(y, a),
        Expr::Ite(x, y, z) => {
            if eval_expr(x, a) {
                eval_expr(y, a)
            } else {
                eval_expr(z, a)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NVARS)).map(|bits| (0..NVARS).map(|i| (bits >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_table(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), eval_expr(&e, &a));
        }
    }

    #[test]
    fn sat_count_matches_enumeration(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let expected = assignments().filter(|a| eval_expr(&e, a)).count();
        prop_assert_eq!(m.sat_count(f), expected as f64);
    }

    #[test]
    fn double_negation_is_identity_node(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let nf = m.not(f);
        prop_assert_eq!(m.not(nf), f);
    }

    #[test]
    fn canonicity_semantic_eq_implies_same_node(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f1 = to_bdd(&mut m, &e1);
        let f2 = to_bdd(&mut m, &e2);
        let semantically_equal = assignments().all(|a| eval_expr(&e1, &a) == eval_expr(&e2, &a));
        prop_assert_eq!(f1 == f2, semantically_equal);
    }

    #[test]
    fn exists_matches_enumeration(e in arb_expr(), quantified in proptest::collection::vec(0..NVARS, 0..4)) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vs = m.varset(&quantified);
        let ex = m.exists(f, vs);
        for a in assignments() {
            // ∃: some completion over quantified vars satisfies e.
            let mut found = false;
            let nq = quantified.len() as u32;
            for combo in 0..(1u32 << nq.min(16)) {
                let mut a2 = a.clone();
                for (i, &v) in quantified.iter().enumerate() {
                    a2[v as usize] = (combo >> i) & 1 == 1;
                }
                if eval_expr(&e, &a2) { found = true; break; }
            }
            prop_assert_eq!(m.eval(ex, &a), found);
        }
    }

    #[test]
    fn forall_is_dual_of_exists(e in arb_expr(), quantified in proptest::collection::vec(0..NVARS, 0..4)) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vs = m.varset(&quantified);
        let fa = m.forall(f, vs);
        let nf = m.not(f);
        let ex = m.exists(nf, vs);
        let dual = m.not(ex);
        prop_assert_eq!(fa, dual);
    }

    #[test]
    fn and_exists_is_fused_relational_product(e1 in arb_expr(), e2 in arb_expr(), quantified in proptest::collection::vec(0..NVARS, 0..4)) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e1);
        let g = to_bdd(&mut m, &e2);
        let vs = m.varset(&quantified);
        let fused = m.and_exists(f, g, vs);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, vs);
        prop_assert_eq!(fused, unfused);
    }

    #[test]
    fn restrict_matches_semantics(e in arb_expr(), var in 0..NVARS, val in any::<bool>()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let r = m.restrict(f, &[(var, val)]);
        for mut a in assignments() {
            a[var as usize] = val;
            prop_assert_eq!(m.eval(r, &a), eval_expr(&e, &a));
        }
        // The restricted function no longer depends on `var`.
        prop_assert!(!m.support(r).contains(&var));
    }

    #[test]
    fn export_import_roundtrip(e in arb_expr()) {
        let mut m1 = Manager::new(NVARS);
        let f = to_bdd(&mut m1, &e);
        let s = m1.export(f);
        let mut m2 = Manager::new(NVARS);
        let g = m2.import(&s);
        for a in assignments() {
            prop_assert_eq!(m2.eval(g, &a), eval_expr(&e, &a));
        }
        // Round trip back into the original manager hits the same node.
        prop_assert_eq!(m1.import(&m2.export(g)), f);
    }

    #[test]
    fn gc_preserves_roots(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let keep = to_bdd(&mut m, &e1);
        let _garbage = to_bdd(&mut m, &e2);
        m.gc([keep]);
        for a in assignments() {
            prop_assert_eq!(m.eval(keep, &a), eval_expr(&e1, &a));
        }
        // The manager still functions after GC: rebuild e1 and get the same node.
        let rebuilt = to_bdd(&mut m, &e1);
        prop_assert_eq!(rebuilt, keep);
    }

    #[test]
    fn pick_minterm_is_satisfying(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let vars: Vec<u32> = (0..NVARS).collect();
        match m.pick_minterm(f, &vars) {
            None => prop_assert_eq!(f, FALSE),
            Some(a) => prop_assert!(m.eval(f, &a)),
        }
    }

    #[test]
    fn cube_union_rebuilds_function(e in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = to_bdd(&mut m, &e);
        let paths: Vec<_> = m.cubes(f).collect();
        let mut rebuilt = FALSE;
        for p in &paths {
            let c = m.cube(p);
            rebuilt = m.or(rebuilt, c);
        }
        prop_assert_eq!(rebuilt, f);
    }

    #[test]
    fn rename_up_down_roundtrip(e in arb_expr()) {
        // Interleaved shift: even→odd then odd→even must be identity.
        let mut m = Manager::new(2 * NVARS);
        let f = to_bdd_even(&mut m, &e);
        let up_pairs: Vec<(u32, u32)> = (0..NVARS).map(|i| (2 * i, 2 * i + 1)).collect();
        let down_pairs: Vec<(u32, u32)> = (0..NVARS).map(|i| (2 * i + 1, 2 * i)).collect();
        let up = m.varmap(&up_pairs);
        let down = m.varmap(&down_pairs);
        let g = m.rename(f, up);
        prop_assert_eq!(m.rename(g, down), f);
    }
}

/// Build the expression over even levels only (current-state vars in the
/// interleaved order), for the rename round-trip test.
fn to_bdd_even(m: &mut Manager, e: &Expr) -> NodeId {
    match e {
        Expr::Const(true) => TRUE,
        Expr::Const(false) => FALSE,
        Expr::Var(v) => m.var(2 * *v),
        Expr::Not(a) => {
            let fa = to_bdd_even(m, a);
            m.not(fa)
        }
        Expr::And(a, b) => {
            let (fa, fb) = (to_bdd_even(m, a), to_bdd_even(m, b));
            m.and(fa, fb)
        }
        Expr::Or(a, b) => {
            let (fa, fb) = (to_bdd_even(m, a), to_bdd_even(m, b));
            m.or(fa, fb)
        }
        Expr::Xor(a, b) => {
            let (fa, fb) = (to_bdd_even(m, a), to_bdd_even(m, b));
            m.xor(fa, fb)
        }
        Expr::Ite(a, b, c) => {
            let (fa, fb, fc) = (to_bdd_even(m, a), to_bdd_even(m, b), to_bdd_even(m, c));
            m.ite(fa, fb, fc)
        }
    }
}

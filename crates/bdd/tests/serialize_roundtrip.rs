//! Cross-manager `SerializedBdd` round-trip property test — the exact path
//! warm-start repair depends on: a BDD exported from a manager whose order
//! has drifted under sifting must re-import into a *differently ordered*
//! manager as the same boolean function.
//!
//! Each case: build a seeded random BDD, sift the source manager, export;
//! prepare a fresh target manager and sift it toward a *different* order
//! (driven by an unrelated skew function); import and check sat-count and
//! sampled-evaluation equality. Every blob also makes the trip through the
//! binary codec (`to_bytes`/`from_bytes`) first, since that is how the disk
//! store moves artifacts.

use ftrepair_bdd::{Manager, NodeId, SerializedBdd, SplitMix64, FALSE, TRUE};

const NVARS: u32 = 12;
const CASES: u64 = 120;
const EVAL_SAMPLES: usize = 300;

fn random_bdd(m: &mut Manager, rng: &mut SplitMix64) -> NodeId {
    let mut f = if rng.coin() { TRUE } else { FALSE };
    for _ in 0..(4 + rng.gen_range(8)) {
        let a = m.var(rng.gen_range(NVARS as u64) as u32);
        let b = m.var(rng.gen_range(NVARS as u64) as u32);
        let g = match rng.gen_range(3) {
            0 => m.and(a, b),
            1 => m.or(a, b),
            _ => m.xor(a, b),
        };
        f = match rng.gen_range(3) {
            0 => m.and(f, g),
            1 => m.or(f, g),
            _ => m.xor(f, g),
        };
    }
    f
}

/// Push the target manager's order away from identity (and from the source
/// manager's sifted order) by sifting a function that pairs distant
/// variables, then discard it.
fn scramble_order(m: &mut Manager, rng: &mut SplitMix64) {
    let mut skew = FALSE;
    for i in 0..NVARS / 2 {
        let a = m.var(i + (rng.gen_range(2) as u32) % NVARS);
        let b = m.var(NVARS - 1 - i);
        let ab = m.and(a, b);
        skew = m.or(skew, ab);
    }
    let _ = m.reorder_sift(&[skew]);
}

fn random_assignment(rng: &mut SplitMix64) -> Vec<bool> {
    (0..NVARS).map(|_| rng.coin()).collect()
}

#[test]
fn sifted_export_imports_into_differently_ordered_manager() {
    let mut rng = SplitMix64::seed_from_u64(0x0df7_0a5e_5107_e001);
    let mut diverged_cases = 0u64;
    for case in 0..CASES {
        let mut src = Manager::new(NVARS);
        let f = random_bdd(&mut src, &mut rng);
        let _ = src.reorder_sift(&[f]);
        src.check_integrity();

        // Through the binary codec, as the disk store would ship it.
        let blob = src.export(f);
        let decoded = SerializedBdd::from_bytes(&blob.to_bytes()).expect("codec round-trip");
        assert_eq!(blob, decoded, "case {case}: codec changed the blob");

        let mut dst = Manager::new(NVARS);
        scramble_order(&mut dst, &mut rng);
        if dst.current_order() != src.current_order() {
            diverged_cases += 1;
        }
        let g = dst.try_import(&decoded).expect("import");
        dst.check_integrity();

        assert_eq!(
            dst.sat_count(g),
            src.sat_count(f),
            "case {case}: sat count lost across diverged-order import"
        );
        for _ in 0..EVAL_SAMPLES {
            let a = random_assignment(&mut rng);
            assert_eq!(dst.eval(g, &a), src.eval(f, &a), "case {case}: eval diverged on {a:?}");
        }

        // Canonicity probe: re-export from the target and import back into
        // the source — must hash-cons to the original root.
        let back = src.import(&dst.export(g));
        assert_eq!(back, f, "case {case}: function identity lost on the return trip");
    }
    // The scramble must actually exercise the ite-rebuild (diverged-order)
    // import path in a healthy majority of cases, or this test would
    // silently regress into testing only the fast replay path.
    assert!(diverged_cases > CASES / 2, "only {diverged_cases}/{CASES} cases had diverged orders");
}

//! Randomized soak test for dynamic variable reordering.
//!
//! ~200 seeded random BDDs are built, sifted, and checked three ways:
//! the manager's internal invariants still hold (`check_integrity`), the
//! satisfying-assignment count is unchanged (sifting permutes the order,
//! never the function), and evaluation agrees with the pre-sift function on
//! 1k random assignments. A second pass round-trips each sifted function
//! through [`SerializedBdd`] into a fresh identity-order manager.

use ftrepair_bdd::{Manager, NodeId, SplitMix64, FALSE, TRUE};

const NVARS: u32 = 14;
const CASES: u64 = 200;
const EVAL_SAMPLES: usize = 1_000;

/// Random BDD built by combining random cubes and literals with random
/// connectives — structure-rich enough that sifting usually has work to do.
fn random_bdd(m: &mut Manager, rng: &mut SplitMix64) -> NodeId {
    let mut f = if rng.coin() { TRUE } else { FALSE };
    let terms = 3 + rng.gen_range(10);
    for _ in 0..terms {
        let g = match rng.gen_range(3) {
            0 => {
                // Random cube over a few variables.
                let width = 1 + rng.gen_range(4) as usize;
                let lits: Vec<(u32, bool)> =
                    (0..width).map(|_| (rng.gen_range(NVARS as u64) as u32, rng.coin())).collect();
                // Dedup vars (cube() requires consistent literals).
                let mut seen = std::collections::HashSet::new();
                let lits: Vec<(u32, bool)> =
                    lits.into_iter().filter(|(v, _)| seen.insert(*v)).collect();
                m.cube(&lits)
            }
            1 => {
                let a = m.var(rng.gen_range(NVARS as u64) as u32);
                let b = m.var(rng.gen_range(NVARS as u64) as u32);
                m.xor(a, b)
            }
            _ => {
                let v = m.var(rng.gen_range(NVARS as u64) as u32);
                if rng.coin() {
                    m.not(v)
                } else {
                    v
                }
            }
        };
        f = match rng.gen_range(3) {
            0 => m.and(f, g),
            1 => m.or(f, g),
            _ => m.xor(f, g),
        };
    }
    f
}

fn random_assignment(rng: &mut SplitMix64) -> Vec<bool> {
    (0..NVARS).map(|_| rng.coin()).collect()
}

#[test]
fn sift_soak_preserves_functions() {
    let mut rng = SplitMix64::seed_from_u64(0x5eed_50a1 ^ 0xA5A5_A5A5);
    for case in 0..CASES {
        let mut m = Manager::new(NVARS);
        let f = random_bdd(&mut m, &mut rng);
        let count_before = m.sat_count(f);
        // Record the truth table on sampled assignments before sifting.
        let samples: Vec<Vec<bool>> =
            (0..EVAL_SAMPLES).map(|_| random_assignment(&mut rng)).collect();
        let before: Vec<bool> = samples.iter().map(|a| m.eval(f, a)).collect();

        let outcome = m.reorder_sift(&[f]);
        m.check_integrity();
        assert!(
            outcome.nodes_after <= outcome.nodes_before,
            "case {case}: sift grew the live count {} -> {}",
            outcome.nodes_before,
            outcome.nodes_after
        );
        assert_eq!(m.sat_count(f), count_before, "case {case}: sat count changed");
        for (a, &expected) in samples.iter().zip(&before) {
            assert_eq!(m.eval(f, a), expected, "case {case}: eval diverged on {a:?}");
        }
    }
}

#[test]
fn sift_soak_serialization_roundtrip() {
    let mut rng = SplitMix64::seed_from_u64(0xdead_beef_cafe_f00d);
    for case in 0..50 {
        let mut m = Manager::new(NVARS);
        let f = random_bdd(&mut m, &mut rng);
        let _ = m.reorder_sift(&[f]);
        m.check_integrity();
        let blob = m.export(f);
        let mut fresh = Manager::new(NVARS);
        let g = fresh.import(&blob);
        assert_eq!(
            fresh.sat_count(g),
            m.sat_count(f),
            "case {case}: sat count lost across reordered export/import"
        );
        for _ in 0..200 {
            let a = random_assignment(&mut rng);
            assert_eq!(fresh.eval(g, &a), m.eval(f, &a), "case {case}: eval diverged on {a:?}");
        }
    }
}

#[test]
fn repeated_sifting_is_stable() {
    // Sifting an already-sifted manager must not oscillate or grow.
    let mut rng = SplitMix64::seed_from_u64(42);
    let mut m = Manager::new(NVARS);
    let f = random_bdd(&mut m, &mut rng);
    let first = m.reorder_sift(&[f]);
    let second = m.reorder_sift(&[f]);
    m.check_integrity();
    assert!(second.nodes_after <= first.nodes_after);
}

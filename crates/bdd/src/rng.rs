//! A small deterministic PRNG (SplitMix64).
//!
//! Used by the explicit-state fault-injection simulator and by the
//! randomized property tests across the workspace. SplitMix64 passes
//! BigCrush, needs no state beyond one `u64`, and — crucially for
//! reproducible tests and an offline build — is ~20 lines of in-tree code
//! rather than an external dependency. Not cryptographic; do not use it
//! for anything security-relevant.

/// SplitMix64 generator (Steele, Lea & Flood; the `splitmix64` reference
/// constants).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed deterministically; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    /// Uses Lemire's multiply-shift reduction (bias is negligible for the
    /// small bounds used here).
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniformly chosen element of `items`, `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.gen_index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(2016);
        let mut b = SplitMix64::seed_from_u64(2016);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(2017);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = SplitMix64::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn random_bool_extremes_and_rough_balance() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..50 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn choose_is_uniform_enough() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let items = [10, 20, 30];
        assert_eq!(rng.choose::<u32>(&[]), None);
        let mut counts = [0usize; 3];
        for _ in 0..3_000 {
            let &v = rng.choose(&items).unwrap();
            counts[(v / 10 - 1) as usize] += 1;
        }
        for c in counts {
            assert!((800..1_200).contains(&c), "{counts:?}");
        }
    }
}

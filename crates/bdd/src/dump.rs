//! Serialization (manager-independent DAG form) and Graphviz export.
//!
//! [`SerializedBdd`] is how BDDs travel between managers: the parallel
//! Step 2 of lazy repair gives each worker thread its own manager and ships
//! the per-process transition predicates across as serialized DAGs. With
//! dynamic reordering each manager's variable order can diverge, so the blob
//! records the source order explicitly; import replays the fast `mk` path
//! when the orders agree (on the function's support) and falls back to an
//! `ite`-based rebuild when they do not.

use crate::hash::FxHashMap;
use crate::manager::Manager;
use crate::node::{NodeId, FALSE, TRUE};

/// A manager-independent, topologically-ordered encoding of one BDD.
///
/// Nodes `0` and `1` are the implicit terminals; entry `i` of `nodes`
/// describes node `i + 2` as `(var, lo, hi)` where `var` is a stable
/// variable index and `lo`/`hi` index earlier nodes (or terminals). `root`
/// indexes the whole table the same way. `order` is the source manager's
/// level-to-variable permutation at export time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializedBdd {
    /// Number of variables the source manager had (import target must have at
    /// least this many).
    pub num_vars: u32,
    /// The source variable order: `order[level] = variable index`. A
    /// permutation of `0..num_vars`.
    pub order: Vec<u32>,
    /// Internal nodes in topological (children-first) order.
    pub nodes: Vec<(u32, u32, u32)>,
    /// Index of the root (0/1 for terminals, `i + 2` for `nodes[i]`).
    pub root: u32,
}

/// Why a [`SerializedBdd`] failed validation on import — hostile or stale
/// blobs are rejected instead of indexing the arena unchecked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ImportError {
    /// The blob needs more variables than the importing manager has.
    TooManyVars { needed: u32, have: u32 },
    /// `order` is not a permutation of `0..num_vars`.
    BadOrder,
    /// A node's variable index is out of `0..num_vars`.
    VarOutOfRange { node: u32, var: u32 },
    /// A node references itself or a later node (the table must be
    /// topological, children first).
    ForwardReference { node: u32, child: u32 },
    /// A node's child branches on a variable at or above the node's own
    /// level in the declared source order.
    OrderViolation { node: u32 },
    /// A node has `lo == hi` (unreduced).
    Unreduced { node: u32 },
    /// `root` indexes past the node table.
    BadRoot { root: u32 },
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::TooManyVars { needed, have } => {
                write!(f, "import needs {needed} vars, manager has {have}")
            }
            ImportError::BadOrder => write!(f, "order is not a permutation of the variables"),
            ImportError::VarOutOfRange { node, var } => {
                write!(f, "node {node} branches on out-of-range variable {var}")
            }
            ImportError::ForwardReference { node, child } => {
                write!(f, "node {node} references non-earlier entry {child}")
            }
            ImportError::OrderViolation { node } => {
                write!(f, "node {node} violates the declared variable order")
            }
            ImportError::Unreduced { node } => write!(f, "node {node} has equal children"),
            ImportError::BadRoot { root } => write!(f, "root {root} indexes past the table"),
        }
    }
}

impl std::error::Error for ImportError {}

/// Why a binary [`SerializedBdd`] blob failed to decode. Decoding is purely
/// syntactic — a blob that decodes still goes through [`Manager::try_import`]
/// for structural validation, so a byte flip that survives decode is caught
/// there (or by the disk store's whole-file checksum before it ever gets
/// here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared content.
    Truncated,
    /// The first four bytes are not the `FBDD` magic.
    BadMagic,
    /// Unknown format version.
    BadVersion { got: u32 },
    /// A declared length does not fit in the remaining buffer (rejected
    /// before allocating, so a hostile length prefix cannot balloon memory).
    Oversized,
    /// Bytes remain after the encoded root.
    TrailingBytes { extra: usize },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "blob truncated"),
            DecodeError::BadMagic => write!(f, "bad magic (not an FBDD blob)"),
            DecodeError::BadVersion { got } => write!(f, "unsupported FBDD version {got}"),
            DecodeError::Oversized => write!(f, "declared length exceeds the blob"),
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes after root"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Binary format magic: "FBDD".
const FBDD_MAGIC: [u8; 4] = *b"FBDD";
/// Binary format version.
const FBDD_VERSION: u32 = 1;

/// Little-endian u32 reader over a byte cursor.
fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let end = pos.checked_add(4).ok_or(DecodeError::Truncated)?;
    let chunk = bytes.get(*pos..end).ok_or(DecodeError::Truncated)?;
    *pos = end;
    Ok(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
}

impl SerializedBdd {
    /// Encode as a self-describing little-endian binary blob:
    /// `"FBDD"` magic, version, `num_vars`, length-prefixed `order`,
    /// length-prefixed `nodes` (three u32 per node), `root`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + 4 * self.order.len() + 12 * self.nodes.len());
        out.extend_from_slice(&FBDD_MAGIC);
        out.extend_from_slice(&FBDD_VERSION.to_le_bytes());
        out.extend_from_slice(&self.num_vars.to_le_bytes());
        out.extend_from_slice(&(self.order.len() as u32).to_le_bytes());
        for &v in &self.order {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.nodes.len() as u32).to_le_bytes());
        for &(var, lo, hi) in &self.nodes {
            out.extend_from_slice(&var.to_le_bytes());
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
        }
        out.extend_from_slice(&self.root.to_le_bytes());
        out
    }

    /// Decode a blob produced by [`SerializedBdd::to_bytes`]. Length
    /// prefixes are checked against the remaining buffer before any
    /// allocation; the whole buffer must be consumed. The result is *not*
    /// structurally validated — pass it to [`Manager::try_import`].
    pub fn from_bytes(bytes: &[u8]) -> Result<SerializedBdd, DecodeError> {
        let mut pos = 0usize;
        if bytes.len() < 4 || bytes[..4] != FBDD_MAGIC {
            if bytes.len() < 4 {
                return Err(DecodeError::Truncated);
            }
            return Err(DecodeError::BadMagic);
        }
        pos += 4;
        let version = read_u32(bytes, &mut pos)?;
        if version != FBDD_VERSION {
            return Err(DecodeError::BadVersion { got: version });
        }
        let num_vars = read_u32(bytes, &mut pos)?;
        let order_len = read_u32(bytes, &mut pos)? as usize;
        if order_len > (bytes.len() - pos) / 4 {
            return Err(DecodeError::Oversized);
        }
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(read_u32(bytes, &mut pos)?);
        }
        let node_len = read_u32(bytes, &mut pos)? as usize;
        if node_len > (bytes.len() - pos) / 12 {
            return Err(DecodeError::Oversized);
        }
        let mut nodes = Vec::with_capacity(node_len);
        for _ in 0..node_len {
            let var = read_u32(bytes, &mut pos)?;
            let lo = read_u32(bytes, &mut pos)?;
            let hi = read_u32(bytes, &mut pos)?;
            nodes.push((var, lo, hi));
        }
        let root = read_u32(bytes, &mut pos)?;
        if pos != bytes.len() {
            return Err(DecodeError::TrailingBytes { extra: bytes.len() - pos });
        }
        Ok(SerializedBdd { num_vars, order, nodes, root })
    }

    /// Structural validation against an importing manager with `have` >=
    /// `num_vars` variables; every check `import` relies on.
    fn validate(&self, have: u32) -> Result<(), ImportError> {
        if self.num_vars > have {
            return Err(ImportError::TooManyVars { needed: self.num_vars, have });
        }
        // `order` must be a permutation of 0..num_vars.
        if self.order.len() != self.num_vars as usize {
            return Err(ImportError::BadOrder);
        }
        let mut seen = vec![false; self.num_vars as usize];
        for &v in &self.order {
            if v >= self.num_vars || seen[v as usize] {
                return Err(ImportError::BadOrder);
            }
            seen[v as usize] = true;
        }
        let src_level = |v: u32| self.order.iter().position(|&w| w == v).unwrap() as u32;
        for (i, &(var, lo, hi)) in self.nodes.iter().enumerate() {
            let id = (i + 2) as u32;
            if var >= self.num_vars {
                return Err(ImportError::VarOutOfRange { node: id, var });
            }
            if lo == hi {
                return Err(ImportError::Unreduced { node: id });
            }
            let my_level = src_level(var);
            for child in [lo, hi] {
                if child >= id {
                    return Err(ImportError::ForwardReference { node: id, child });
                }
                if child >= 2 {
                    let child_var = self.nodes[child as usize - 2].0;
                    if src_level(child_var) <= my_level {
                        return Err(ImportError::OrderViolation { node: id });
                    }
                }
            }
        }
        if self.root as usize >= self.nodes.len() + 2 {
            return Err(ImportError::BadRoot { root: self.root });
        }
        Ok(())
    }

    /// Whether the declared source order agrees with `target` (the importing
    /// manager's `var2level`) on the *relative* order of all variables in
    /// this blob's support — the condition for the fast `mk` replay path.
    fn order_compatible(&self, target: &Manager) -> bool {
        let mut prev = None;
        for &v in &self.order {
            if !self.nodes.iter().any(|&(var, _, _)| var == v) {
                continue; // not in support: its position is irrelevant
            }
            let lvl = target.var2level[v as usize];
            if let Some(p) = prev {
                if lvl <= p {
                    return false;
                }
            }
            prev = Some(lvl);
        }
        true
    }
}

impl Manager {
    /// Export the function rooted at `f` as a portable DAG.
    pub fn export(&self, f: NodeId) -> SerializedBdd {
        let mut order: Vec<NodeId> = Vec::new();
        let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
        index.insert(FALSE, 0);
        index.insert(TRUE, 1);
        // Iterative post-order so children are numbered before parents.
        let mut stack: Vec<(NodeId, bool)> = vec![(f, false)];
        while let Some((g, expanded)) = stack.pop() {
            if index.contains_key(&g) {
                continue;
            }
            if expanded {
                let id = (order.len() + 2) as u32;
                index.insert(g, id);
                order.push(g);
            } else {
                stack.push((g, true));
                stack.push((self.hi(g), false));
                stack.push((self.lo(g), false));
            }
        }
        let nodes = order
            .iter()
            .map(|&g| (self.var_of(g), index[&self.lo(g)], index[&self.hi(g)]))
            .collect();
        SerializedBdd {
            num_vars: self.num_vars(),
            order: self.current_order(),
            nodes,
            root: index[&f],
        }
    }

    /// Import a serialized DAG into this manager, returning the root.
    ///
    /// Panics on a malformed blob; use [`Manager::try_import`] when the blob
    /// comes from an untrusted or possibly stale source.
    pub fn import(&mut self, s: &SerializedBdd) -> NodeId {
        match self.try_import(s) {
            Ok(root) => root,
            Err(e) => panic!("{e}"),
        }
    }

    /// Validated import. When the blob's variable order is compatible with
    /// this manager's (on the function's support), every node replays
    /// through `mk` — linear time, hash-consed against everything already
    /// here. Otherwise the function is rebuilt bottom-up with `ite`, which
    /// re-expresses it in this manager's order.
    pub fn try_import(&mut self, s: &SerializedBdd) -> Result<NodeId, ImportError> {
        s.validate(self.num_vars())?;
        let mut ids: Vec<NodeId> = Vec::with_capacity(s.nodes.len() + 2);
        ids.push(FALSE);
        ids.push(TRUE);
        if s.order_compatible(self) {
            for &(var, lo, hi) in &s.nodes {
                let lo = ids[lo as usize];
                let hi = ids[hi as usize];
                ids.push(self.mk_var(var, lo, hi));
            }
        } else {
            // Diverged orders: Shannon-recombine each node in *this*
            // manager's order. Children are already rebuilt (topological
            // order), so `ite(var, hi, lo)` is correct regardless of where
            // `var` now sits.
            for &(var, lo, hi) in &s.nodes {
                let v = self.var(var);
                let lo = ids[lo as usize];
                let hi = ids[hi as usize];
                ids.push(self.ite(v, hi, lo));
            }
        }
        Ok(ids[s.root as usize])
    }

    /// Graphviz `dot` rendering of the DAG rooted at `f`, with an optional
    /// naming function for variable indices.
    pub fn to_dot(&self, f: NodeId, name: impl Fn(u32) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f0 [label=\"0\", shape=box];\n  f1 [label=\"1\", shape=box];\n");
        let mut seen = crate::hash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            let node_name = |n: NodeId| match n {
                FALSE => "f0".to_string(),
                TRUE => "f1".to_string(),
                NodeId(i) => format!("n{i}"),
            };
            writeln!(out, "  {} [label=\"{}\", shape=circle];", node_name(g), name(self.var_of(g)))
                .unwrap();
            writeln!(out, "  {} -> {} [style=dashed];", node_name(g), node_name(self.lo(g)))
                .unwrap();
            writeln!(out, "  {} -> {};", node_name(g), node_name(self.hi(g))).unwrap();
            stack.push(self.lo(g));
            stack.push(self.hi(g));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    fn sample(m: &mut Manager) -> NodeId {
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.xor(a, b);
        m.or(ab, c)
    }

    #[test]
    fn export_import_roundtrip_same_manager() {
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let s = m.export(f);
        let g = m.import(&s);
        assert_eq!(f, g); // canonicity: re-import hash-conses to the original
    }

    #[test]
    fn export_import_across_managers() {
        let mut m1 = Manager::new(3);
        let f = sample(&mut m1);
        let s = m1.export(f);
        let mut m2 = Manager::new(3);
        let g = m2.import(&s);
        // Semantics preserved: identical truth tables.
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(m1.eval(f, &a), m2.eval(g, &a), "bits={bits}");
        }
    }

    #[test]
    fn export_terminals() {
        let mut m = Manager::new(1);
        let s_false = m.export(FALSE);
        assert_eq!(s_false.root, 0);
        assert!(s_false.nodes.is_empty());
        assert_eq!(m.import(&s_false), FALSE);
        let s_true = m.export(TRUE);
        assert_eq!(s_true.root, 1);
        assert_eq!(m.import(&s_true), TRUE);
    }

    #[test]
    fn export_is_topologically_ordered() {
        let mut m = Manager::new(4);
        let f = {
            let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
            let ab = m.and(a, b);
            let cd = m.or(c, d);
            m.xor(ab, cd)
        };
        let s = m.export(f);
        for (i, &(_, lo, hi)) in s.nodes.iter().enumerate() {
            let my_id = (i + 2) as u32;
            assert!(lo < my_id && hi < my_id, "node {my_id} references a later node");
        }
        assert_eq!(s.root as usize, s.nodes.len() + 1);
        assert_eq!(s.order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn import_into_bigger_universe() {
        let mut m1 = Manager::new(2);
        let a = m1.var(0);
        let b = m1.var(1);
        let f = m1.and(a, b);
        let s = m1.export(f);
        let mut m2 = Manager::new(6);
        let g = m2.import(&s);
        assert_eq!(m2.sat_count_over(g, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "import needs")]
    fn import_into_smaller_universe_panics() {
        let mut m1 = Manager::new(4);
        let f = m1.var(3);
        let s = m1.export(f);
        let mut m2 = Manager::new(2);
        let _ = m2.import(&s);
    }

    #[test]
    fn import_from_reordered_manager() {
        // Build a function, sift the source manager so its order diverges,
        // export, and import into a fresh identity-order manager: the
        // function (by stable variable index) must survive.
        let mut m1 = Manager::new(8);
        let mut f = FALSE;
        for i in 0..4 {
            let a = m1.var(i);
            let b = m1.var(4 + i);
            let ab = m1.and(a, b);
            f = m1.or(f, ab);
        }
        let _ = m1.reorder_sift(&[f]);
        assert_ne!(m1.current_order(), (0..8).collect::<Vec<u32>>(), "sift should reorder");
        let s = m1.export(f);
        let mut m2 = Manager::new(8);
        let g = m2.import(&s);
        for bits in 0..256u32 {
            let a: Vec<bool> = (0..8).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(m1.eval(f, &a), m2.eval(g, &a), "bits={bits:08b}");
        }
        // And the reverse direction: identity blob into the sifted manager.
        let s2 = m2.export(g);
        let h = m1.import(&s2);
        assert_eq!(h, f, "canonicity after cross-order roundtrip");
    }

    #[test]
    fn adversarial_order_not_permutation() {
        let blob =
            SerializedBdd { num_vars: 2, order: vec![0, 0], nodes: vec![(0, 0, 1)], root: 2 };
        let mut m = Manager::new(2);
        assert_eq!(m.try_import(&blob), Err(ImportError::BadOrder));
        let blob = SerializedBdd { num_vars: 2, order: vec![0], nodes: vec![], root: 0 };
        assert_eq!(m.try_import(&blob), Err(ImportError::BadOrder));
    }

    #[test]
    fn adversarial_var_out_of_range() {
        let blob =
            SerializedBdd { num_vars: 2, order: vec![0, 1], nodes: vec![(7, 0, 1)], root: 2 };
        let mut m = Manager::new(4);
        assert_eq!(m.try_import(&blob), Err(ImportError::VarOutOfRange { node: 2, var: 7 }));
    }

    #[test]
    fn adversarial_forward_reference() {
        // Node 2 points at node 3 (later) and at itself — both rejected.
        let blob = SerializedBdd {
            num_vars: 2,
            order: vec![0, 1],
            nodes: vec![(0, 3, 1), (1, 0, 1)],
            root: 2,
        };
        let mut m = Manager::new(2);
        assert_eq!(m.try_import(&blob), Err(ImportError::ForwardReference { node: 2, child: 3 }));
        let blob =
            SerializedBdd { num_vars: 2, order: vec![0, 1], nodes: vec![(0, 2, 1)], root: 2 };
        assert_eq!(m.try_import(&blob), Err(ImportError::ForwardReference { node: 2, child: 2 }));
    }

    #[test]
    fn adversarial_bad_root() {
        let blob = SerializedBdd { num_vars: 1, order: vec![0], nodes: vec![], root: 5 };
        let mut m = Manager::new(1);
        assert_eq!(m.try_import(&blob), Err(ImportError::BadRoot { root: 5 }));
    }

    #[test]
    fn adversarial_order_violation_and_unreduced() {
        // Child branches on a variable *above* its parent in the declared
        // order: structurally a DAG, but not an ordered BDD.
        let blob = SerializedBdd {
            num_vars: 2,
            order: vec![0, 1],
            nodes: vec![(0, 0, 1), (1, 2, 1)],
            root: 3,
        };
        let mut m = Manager::new(2);
        assert_eq!(m.try_import(&blob), Err(ImportError::OrderViolation { node: 3 }));
        let blob = SerializedBdd { num_vars: 1, order: vec![0], nodes: vec![(0, 1, 1)], root: 2 };
        assert_eq!(m.try_import(&blob), Err(ImportError::Unreduced { node: 2 }));
    }

    #[test]
    fn import_errors_display() {
        // Every variant renders a human-readable message (the server logs
        // these verbatim).
        let msgs = [
            ImportError::TooManyVars { needed: 4, have: 2 }.to_string(),
            ImportError::BadOrder.to_string(),
            ImportError::VarOutOfRange { node: 2, var: 9 }.to_string(),
            ImportError::ForwardReference { node: 2, child: 3 }.to_string(),
            ImportError::OrderViolation { node: 2 }.to_string(),
            ImportError::Unreduced { node: 2 }.to_string(),
            ImportError::BadRoot { root: 9 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }

    #[test]
    fn serde_json_like_roundtrip() {
        // serde derive works; round-trip through the serde data model using
        // a simple in-memory format check via Debug equality after clone.
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let s = m.export(f);
        let s2 = s.clone();
        assert_eq!(s, s2);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let s = m.export(f);
        let bytes = s.to_bytes();
        let back = SerializedBdd::from_bytes(&bytes).expect("decodes");
        assert_eq!(s, back);
        let mut m2 = Manager::new(3);
        let g = m2.try_import(&back).expect("imports");
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(m.eval(f, &a), m2.eval(g, &a), "bits={bits}");
        }
    }

    #[test]
    fn bytes_roundtrip_terminals() {
        let m = Manager::new(2);
        for t in [FALSE, TRUE] {
            let s = m.export(t);
            let back = SerializedBdd::from_bytes(&s.to_bytes()).expect("decodes");
            assert_eq!(s, back);
        }
    }

    #[test]
    fn decode_rejects_bad_magic_and_version() {
        let mut m = Manager::new(2);
        let f = m.var(0);
        let mut bytes = m.export(f).to_bytes();
        bytes[0] = b'X';
        assert_eq!(SerializedBdd::from_bytes(&bytes), Err(DecodeError::BadMagic));
        let mut bytes = m.export(f).to_bytes();
        bytes[4] = 99;
        assert_eq!(SerializedBdd::from_bytes(&bytes), Err(DecodeError::BadVersion { got: 99 }));
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let mut m = Manager::new(4);
        let f = sample(&mut m);
        let bytes = m.export(f).to_bytes();
        for cut in 0..bytes.len() {
            let err = SerializedBdd::from_bytes(&bytes[..cut]).unwrap_err();
            // A cut inside a length-prefixed section reads back as
            // `Oversized` (the surviving prefix declares more content than
            // remains) — any of the three is a correct rejection.
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated | DecodeError::BadMagic | DecodeError::Oversized
                ),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut m = Manager::new(2);
        let f = m.var(1);
        let mut bytes = m.export(f).to_bytes();
        bytes.push(0);
        assert_eq!(SerializedBdd::from_bytes(&bytes), Err(DecodeError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn decode_rejects_hostile_length_prefix_before_allocating() {
        // A blob claiming u32::MAX order entries in a 32-byte buffer must be
        // rejected by the length-vs-remaining check, not by attempting a
        // 16 GiB allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FBDD");
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version
        bytes.extend_from_slice(&2u32.to_le_bytes()); // num_vars
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // order_len: hostile
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(SerializedBdd::from_bytes(&bytes), Err(DecodeError::Oversized));
        // Same for the node table.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FBDD");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // num_vars
        bytes.extend_from_slice(&1u32.to_le_bytes()); // order_len
        bytes.extend_from_slice(&0u32.to_le_bytes()); // order[0]
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // node_len: hostile
        assert_eq!(SerializedBdd::from_bytes(&bytes), Err(DecodeError::Oversized));
    }

    #[test]
    fn decode_errors_display() {
        for e in [
            DecodeError::Truncated,
            DecodeError::BadMagic,
            DecodeError::BadVersion { got: 2 },
            DecodeError::Oversized,
            DecodeError::TrailingBytes { extra: 3 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn dot_output_mentions_all_reachable_levels() {
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let dot = m.to_dot(f, |l| format!("x{l}"));
        assert!(dot.contains("x0") && dot.contains("x1") && dot.contains("x2"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

//! Serialization (manager-independent DAG form) and Graphviz export.
//!
//! [`SerializedBdd`] is how BDDs travel between managers: the parallel
//! Step 2 of lazy repair gives each worker thread its own manager and ships
//! the per-process transition predicates across as serialized DAGs.

use crate::hash::FxHashMap;
use crate::manager::Manager;
use crate::node::{NodeId, FALSE, TRUE};

/// A manager-independent, topologically-ordered encoding of one BDD.
///
/// Nodes `0` and `1` are the implicit terminals; entry `i` of `nodes`
/// describes node `i + 2` as `(level, lo, hi)` where `lo`/`hi` index earlier
/// nodes (or terminals). `root` indexes the whole table the same way.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerializedBdd {
    /// Number of variables the source manager had (import target must have at
    /// least this many).
    pub num_vars: u32,
    /// Internal nodes in topological (children-first) order.
    pub nodes: Vec<(u32, u32, u32)>,
    /// Index of the root (0/1 for terminals, `i + 2` for `nodes[i]`).
    pub root: u32,
}

impl Manager {
    /// Export the function rooted at `f` as a portable DAG.
    pub fn export(&self, f: NodeId) -> SerializedBdd {
        let mut order: Vec<NodeId> = Vec::new();
        let mut index: FxHashMap<NodeId, u32> = FxHashMap::default();
        index.insert(FALSE, 0);
        index.insert(TRUE, 1);
        // Iterative post-order so children are numbered before parents.
        let mut stack: Vec<(NodeId, bool)> = vec![(f, false)];
        while let Some((g, expanded)) = stack.pop() {
            if index.contains_key(&g) {
                continue;
            }
            if expanded {
                let id = (order.len() + 2) as u32;
                index.insert(g, id);
                order.push(g);
            } else {
                stack.push((g, true));
                stack.push((self.hi(g), false));
                stack.push((self.lo(g), false));
            }
        }
        let nodes = order
            .iter()
            .map(|&g| (self.level(g), index[&self.lo(g)], index[&self.hi(g)]))
            .collect();
        SerializedBdd { num_vars: self.num_vars(), nodes, root: index[&f] }
    }

    /// Import a serialized DAG into this manager, returning the root.
    ///
    /// Canonicity is restored by re-running every node through `mk`, so the
    /// result is hash-consed against everything already in this manager.
    pub fn import(&mut self, s: &SerializedBdd) -> NodeId {
        assert!(
            s.num_vars <= self.num_vars(),
            "import needs {} vars, manager has {}",
            s.num_vars,
            self.num_vars()
        );
        let mut ids: Vec<NodeId> = Vec::with_capacity(s.nodes.len() + 2);
        ids.push(FALSE);
        ids.push(TRUE);
        for &(level, lo, hi) in &s.nodes {
            let lo = ids[lo as usize];
            let hi = ids[hi as usize];
            ids.push(self.mk(level, lo, hi));
        }
        ids[s.root as usize]
    }

    /// Graphviz `dot` rendering of the DAG rooted at `f`, with an optional
    /// naming function for variable levels.
    pub fn to_dot(&self, f: NodeId, name: impl Fn(u32) -> String) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        out.push_str("  f0 [label=\"0\", shape=box];\n  f1 [label=\"1\", shape=box];\n");
        let mut seen = crate::hash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            let node_name = |n: NodeId| match n {
                FALSE => "f0".to_string(),
                TRUE => "f1".to_string(),
                NodeId(i) => format!("n{i}"),
            };
            writeln!(out, "  {} [label=\"{}\", shape=circle];", node_name(g), name(self.level(g)))
                .unwrap();
            writeln!(out, "  {} -> {} [style=dashed];", node_name(g), node_name(self.lo(g)))
                .unwrap();
            writeln!(out, "  {} -> {};", node_name(g), node_name(self.hi(g))).unwrap();
            stack.push(self.lo(g));
            stack.push(self.hi(g));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    fn sample(m: &mut Manager) -> NodeId {
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.xor(a, b);
        m.or(ab, c)
    }

    #[test]
    fn export_import_roundtrip_same_manager() {
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let s = m.export(f);
        let g = m.import(&s);
        assert_eq!(f, g); // canonicity: re-import hash-conses to the original
    }

    #[test]
    fn export_import_across_managers() {
        let mut m1 = Manager::new(3);
        let f = sample(&mut m1);
        let s = m1.export(f);
        let mut m2 = Manager::new(3);
        let g = m2.import(&s);
        // Semantics preserved: identical truth tables.
        for bits in 0..8u32 {
            let a: Vec<bool> = (0..3).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(m1.eval(f, &a), m2.eval(g, &a), "bits={bits}");
        }
    }

    #[test]
    fn export_terminals() {
        let mut m = Manager::new(1);
        let s_false = m.export(FALSE);
        assert_eq!(s_false.root, 0);
        assert!(s_false.nodes.is_empty());
        assert_eq!(m.import(&s_false), FALSE);
        let s_true = m.export(TRUE);
        assert_eq!(s_true.root, 1);
        assert_eq!(m.import(&s_true), TRUE);
    }

    #[test]
    fn export_is_topologically_ordered() {
        let mut m = Manager::new(4);
        let f = {
            let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
            let ab = m.and(a, b);
            let cd = m.or(c, d);
            m.xor(ab, cd)
        };
        let s = m.export(f);
        for (i, &(_, lo, hi)) in s.nodes.iter().enumerate() {
            let my_id = (i + 2) as u32;
            assert!(lo < my_id && hi < my_id, "node {my_id} references a later node");
        }
        assert_eq!(s.root as usize, s.nodes.len() + 1);
    }

    #[test]
    fn import_into_bigger_universe() {
        let mut m1 = Manager::new(2);
        let a = m1.var(0);
        let b = m1.var(1);
        let f = m1.and(a, b);
        let s = m1.export(f);
        let mut m2 = Manager::new(6);
        let g = m2.import(&s);
        assert_eq!(m2.sat_count_over(g, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "import needs")]
    fn import_into_smaller_universe_panics() {
        let mut m1 = Manager::new(4);
        let f = m1.var(3);
        let s = m1.export(f);
        let mut m2 = Manager::new(2);
        let _ = m2.import(&s);
    }

    #[test]
    fn serde_json_like_roundtrip() {
        // serde derive works; round-trip through the serde data model using
        // a simple in-memory format check via Debug equality after clone.
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let s = m.export(f);
        let s2 = s.clone();
        assert_eq!(s, s2);
    }

    #[test]
    fn dot_output_mentions_all_reachable_levels() {
        let mut m = Manager::new(3);
        let f = sample(&mut m);
        let dot = m.to_dot(f, |l| format!("x{l}"));
        assert!(dot.contains("x0") && dot.contains("x1") && dot.contains("x2"));
        assert!(dot.starts_with("digraph bdd {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}

//! The BDD manager: node arena, unique table, garbage collection.

use crate::hash::FxHashMap;
use crate::node::{Node, NodeId, FALSE, TERMINAL_LEVEL, TRUE};

/// One memoization cache with hit/miss accounting.
///
/// Lookups go through [`MemoCache::get`], which counts every probe; the
/// counters survive [`MemoCache::clear`] (cache trims and GC wipe entries,
/// not history), so [`Manager::cache_stats`] reports rates over the whole
/// run.
pub(crate) struct MemoCache<K> {
    map: FxHashMap<K, NodeId>,
    hits: u64,
    misses: u64,
}

impl<K> Default for MemoCache<K> {
    fn default() -> Self {
        MemoCache { map: FxHashMap::default(), hits: 0, misses: 0 }
    }
}

impl<K: std::hash::Hash + Eq> MemoCache<K> {
    #[inline]
    pub fn get(&mut self, key: &K) -> Option<NodeId> {
        match self.map.get(key) {
            Some(&r) => {
                self.hits += 1;
                Some(r)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    #[inline]
    pub fn insert(&mut self, key: K, value: NodeId) {
        self.map.insert(key, value);
    }

    fn clear(&mut self) {
        self.map.clear();
    }

    fn retain(&mut self, keep: impl FnMut(&K, NodeId) -> bool) {
        let mut keep = keep;
        self.map.retain(|k, v| keep(k, *v));
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn counter(&self) -> CacheCounter {
        CacheCounter { hits: self.hits, misses: self.misses, entries: self.map.len() }
    }
}

/// Memoization caches for the recursive operations.
///
/// Garbage collection drops exactly the entries that reference a dead node
/// ([`Caches::retain_live`]); every surviving entry stays valid because a
/// surviving `NodeId`'s *function* never changes — neither GC nor an
/// in-place reorder rebinds a live slot. Keys embed everything the result
/// depends on, so the caches never need invalidation otherwise.
#[derive(Default)]
pub(crate) struct Caches {
    /// `NOT f ↦ result`.
    pub not: MemoCache<NodeId>,
    /// `(op, f, g) ↦ result` for the binary boolean connectives; commutative
    /// operations normalize `f <= g`.
    pub apply: MemoCache<(u8, NodeId, NodeId)>,
    /// `ite(f, g, h) ↦ result`.
    pub ite: MemoCache<(NodeId, NodeId, NodeId)>,
    /// `(∃/∀, f, varset) ↦ result`.
    pub quant: MemoCache<(u8, NodeId, u32)>,
    /// `∃ vs. f ∧ g ↦ result` (the relational product).
    pub and_exists: MemoCache<(NodeId, NodeId, u32)>,
    /// `(f, varmap) ↦ result` for order-preserving renaming.
    pub rename: MemoCache<(NodeId, u32)>,
}

impl Caches {
    /// Drop every entry that references a node `live` rejects. Cached
    /// results are function identities (`and(f, g) = h` holds under any
    /// variable order, and the interned varset/varmap indices in the
    /// quantification/rename keys are never recycled), so liveness of the
    /// mentioned nodes is the *only* validity condition.
    pub(crate) fn retain_live(&mut self, live: impl Fn(NodeId) -> bool) {
        self.not.retain(|&f, v| live(f) && live(v));
        self.apply.retain(|&(_, f, g), v| live(f) && live(g) && live(v));
        self.ite.retain(|&(f, g, h), v| live(f) && live(g) && live(h) && live(v));
        self.quant.retain(|&(_, f, _), v| live(f) && live(v));
        self.and_exists.retain(|&(f, g, _), v| live(f) && live(g) && live(v));
        self.rename.retain(|&(f, _), v| live(f) && live(v));
    }

    pub(crate) fn clear(&mut self) {
        self.not.clear();
        self.apply.clear();
        self.ite.clear();
        self.quant.clear();
        self.and_exists.clear();
        self.rename.clear();
    }

    fn len(&self) -> usize {
        self.not.len()
            + self.apply.len()
            + self.ite.len()
            + self.quant.len()
            + self.and_exists.len()
            + self.rename.len()
    }
}

/// Hit/miss tally of one cache (or of the unique table).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounter {
    pub hits: u64,
    pub misses: u64,
    /// Entries currently resident (post any trims/GCs).
    pub entries: usize,
}

impl CacheCounter {
    /// Total probes.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits over probes, in `[0, 1]`; 0 when the cache was never probed.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Per-cache hit/miss snapshot covering all six op caches plus the unique
/// table. Rates, not raw counts, are the headline numbers
/// ([`CacheCounter::hit_rate`]); raw counts stay available for summing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub not: CacheCounter,
    pub apply: CacheCounter,
    pub ite: CacheCounter,
    pub quant: CacheCounter,
    pub and_exists: CacheCounter,
    pub rename: CacheCounter,
    pub unique: CacheCounter,
}

impl CacheStats {
    /// The six op caches as `(name, counter)` pairs, excluding the unique
    /// table.
    pub fn op_caches(&self) -> [(&'static str, CacheCounter); 6] {
        [
            ("not", self.not),
            ("apply", self.apply),
            ("ite", self.ite),
            ("quant", self.quant),
            ("and_exists", self.and_exists),
            ("rename", self.rename),
        ]
    }
}

/// Counters exposed for benchmarking and regression tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Live (allocated, not freed) internal nodes, excluding terminals.
    pub live_nodes: usize,
    /// High-water mark of `live_nodes` over the manager's lifetime.
    pub peak_live_nodes: usize,
    /// Total arena capacity ever allocated, excluding terminals.
    pub allocated_nodes: usize,
    /// Slots currently on the free list.
    pub free_nodes: usize,
    /// Entries across all memo caches.
    pub cache_entries: usize,
    /// Number of garbage collections performed.
    pub gc_runs: usize,
    /// `mk` calls that found an existing node in the unique table.
    pub unique_hits: u64,
    /// `mk` calls that created a fresh node.
    pub unique_misses: u64,
    /// Completed [`Manager::reorder_sift`] runs.
    pub reorder_runs: u64,
    /// Adjacent-level swaps performed across all reorder runs.
    pub reorder_swaps: u64,
    /// Sift directions abandoned because the arena outgrew the max-growth
    /// bound.
    pub reorder_aborted: u64,
    /// Live nodes right after the most recent reorder (0 if none ran).
    pub post_reorder_nodes: usize,
}

/// A BDD manager owning the node arena for one variable order.
///
/// Variables are identified by a stable *variable index* `0..num_vars`; the
/// manager maintains a separate (mutable) level permutation so that dynamic
/// reordering (see `reorder.rs`) can move variables without invalidating any
/// caller-held index. Until a reorder runs, level `i` is variable `i`. All
/// [`NodeId`]s returned by a manager are only valid with that manager; use
/// [`crate::SerializedBdd`] to move functions between managers (it records
/// the source order so managers with diverged orders can still exchange
/// BDDs).
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: FxHashMap<Node, NodeId>,
    pub(crate) free: Vec<u32>,
    num_vars: u32,
    /// Level of each variable index (a permutation of `0..num_vars`).
    pub(crate) var2level: Vec<u32>,
    /// Variable index at each level (the inverse permutation).
    pub(crate) level2var: Vec<u32>,
    pub(crate) caches: Caches,
    /// Externally protected roots (refcounted) that GC must keep alive.
    pub(crate) protected: FxHashMap<NodeId, u32>,
    /// Interned variable sets for quantification (see `quant.rs`), stored as
    /// sorted variable indices — the order-independent interning identity.
    pub(crate) varsets: Vec<Vec<u32>>,
    varset_ids: FxHashMap<Vec<u32>, u32>,
    /// Level-space view of each varset under the current order (sorted
    /// ascending); rebuilt after every reorder.
    pub(crate) varsets_lvl: Vec<Vec<u32>>,
    /// Interned variable maps for renaming (see `rename.rs`), as variable
    /// index pairs sorted by source index.
    pub(crate) varmaps: Vec<Vec<(u32, u32)>>,
    varmap_ids: FxHashMap<Vec<(u32, u32)>, u32>,
    /// Level-space view of each varmap, sorted by source level; rebuilt (and
    /// re-checked for order preservation) after every reorder.
    pub(crate) varmaps_lvl: Vec<Vec<(u32, u32)>>,
    gc_runs: usize,
    pub(crate) unique_hits: u64,
    pub(crate) unique_misses: u64,
    /// Live internal nodes, maintained incrementally by `mk`/GC/reorder.
    pub(crate) live_count: usize,
    /// High-water mark of `live_count`.
    pub(crate) peak_live: usize,
    /// Sift groups (variable indices occupying contiguous levels); empty
    /// means every variable sifts alone. See [`Manager::set_reorder_groups`].
    pub(crate) groups: Vec<Vec<u32>>,
    /// Armed auto-reorder trigger, if any (see [`Manager::set_auto_reorder`]).
    pub(crate) auto_reorder: Option<crate::reorder::AutoReorder>,
    /// Live-node budget (0 = unlimited; see [`Manager::set_node_budget`]).
    pub(crate) node_budget: usize,
    /// Sticky flag: the budget was exceeded and a GC could not help.
    pub(crate) budget_exhausted: bool,
    /// Sifting abandons a direction once the arena exceeds this factor of its
    /// size at the start of the current block's sift.
    pub(crate) max_growth: f64,
    pub(crate) reorder_runs: u64,
    pub(crate) reorder_swaps: u64,
    pub(crate) reorder_aborted: u64,
    pub(crate) post_reorder_nodes: usize,
}

impl Manager {
    /// Create a manager for `num_vars` boolean variables (levels
    /// `0..num_vars`).
    pub fn new(num_vars: u32) -> Self {
        let mut nodes = Vec::with_capacity(1024);
        // Terminal nodes occupy slots 0 and 1; their children are self-loops
        // that no traversal ever follows (guarded by `is_terminal`).
        nodes.push(Node { var: TERMINAL_LEVEL, lo: FALSE, hi: FALSE });
        nodes.push(Node { var: TERMINAL_LEVEL, lo: TRUE, hi: TRUE });
        Manager {
            nodes,
            unique: FxHashMap::default(),
            free: Vec::new(),
            num_vars,
            var2level: (0..num_vars).collect(),
            level2var: (0..num_vars).collect(),
            caches: Caches::default(),
            protected: FxHashMap::default(),
            varsets: Vec::new(),
            varset_ids: FxHashMap::default(),
            varsets_lvl: Vec::new(),
            varmaps: Vec::new(),
            varmap_ids: FxHashMap::default(),
            varmaps_lvl: Vec::new(),
            gc_runs: 0,
            unique_hits: 0,
            unique_misses: 0,
            live_count: 0,
            peak_live: 0,
            groups: Vec::new(),
            auto_reorder: None,
            node_budget: 0,
            budget_exhausted: false,
            max_growth: crate::reorder::DEFAULT_MAX_GROWTH,
            reorder_runs: 0,
            reorder_swaps: 0,
            reorder_aborted: 0,
            post_reorder_nodes: 0,
        }
    }

    /// Number of boolean variables this manager was created with.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Grow the variable universe (new variables enter at the bottom of the
    /// current order; existing BDDs are unaffected because the new levels
    /// sort below all existing nodes).
    pub fn add_vars(&mut self, extra: u32) {
        for _ in 0..extra {
            let v = self.num_vars;
            self.var2level.push(v);
            self.level2var.push(v);
            self.num_vars += 1;
        }
    }

    /// The current level of a node's branching variable (`TERMINAL_LEVEL`
    /// for terminals).
    #[inline]
    pub(crate) fn level(&self, f: NodeId) -> u32 {
        let v = self.nodes[f.0 as usize].var;
        if v == TERMINAL_LEVEL {
            TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    /// The branching variable index of a node (`TERMINAL_LEVEL` for
    /// terminals). Stable across reorders.
    #[inline]
    pub(crate) fn var_of(&self, f: NodeId) -> u32 {
        self.nodes[f.0 as usize].var
    }

    /// Low (else) child. Caller must ensure `f` is internal.
    #[inline]
    pub(crate) fn lo(&self, f: NodeId) -> NodeId {
        self.nodes[f.0 as usize].lo
    }

    /// High (then) child. Caller must ensure `f` is internal.
    #[inline]
    pub(crate) fn hi(&self, f: NodeId) -> NodeId {
        self.nodes[f.0 as usize].hi
    }

    /// Hash-consing constructor in **level space**: the unique canonical node
    /// branching at the current `level`. The recursive ops work on levels
    /// (order-dependent) while nodes store the stable variable index.
    #[inline]
    pub(crate) fn mk(&mut self, level: u32, lo: NodeId, hi: NodeId) -> NodeId {
        debug_assert!(level < self.num_vars, "level {level} out of range");
        if lo == hi {
            return lo; // reduction rule
        }
        debug_assert!(level < self.level(lo) && level < self.level(hi), "order violation");
        let node = Node { var: self.level2var[level as usize], lo, hi };
        self.hash_cons(node)
    }

    /// Hash-consing constructor in **variable space** (for callers that hold
    /// stable variable indices: `var`, `cube`, import, reorder).
    #[inline]
    pub(crate) fn mk_var(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        debug_assert!(var < self.num_vars, "variable {var} out of range");
        if lo == hi {
            return lo; // reduction rule
        }
        debug_assert!(
            {
                let l = self.var2level[var as usize];
                l < self.level(lo) && l < self.level(hi)
            },
            "order violation"
        );
        self.hash_cons(Node { var, lo, hi })
    }

    #[inline]
    fn hash_cons(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.unique.get(&node) {
            self.unique_hits += 1;
            return id;
        }
        self.unique_misses += 1;
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                NodeId(slot)
            }
            None => {
                let slot = u32::try_from(self.nodes.len()).expect("arena exceeds u32 indices");
                self.nodes.push(node);
                NodeId(slot)
            }
        };
        self.unique.insert(node, id);
        self.live_count += 1;
        if self.live_count > self.peak_live {
            self.peak_live = self.live_count;
        }
        id
    }

    /// The function `var(v)` — true iff variable `v` is true. The index is
    /// stable across reorders.
    pub fn var(&mut self, v: u32) -> NodeId {
        self.mk_var(v, FALSE, TRUE)
    }

    /// The function `¬var(v)`.
    pub fn nvar(&mut self, v: u32) -> NodeId {
        self.mk_var(v, TRUE, FALSE)
    }

    /// The conjunction of literals described by `(variable, positive)` pairs.
    /// Pairs may be in any order; duplicate variables must agree (conflicting
    /// literals yield `FALSE`).
    pub fn cube(&mut self, literals: &[(u32, bool)]) -> NodeId {
        let mut lits: Vec<(u32, bool)> = literals.to_vec();
        lits.sort_unstable();
        for w in lits.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 != w[1].1 {
                return FALSE;
            }
        }
        lits.dedup();
        // Build bottom-up in the *current* order: deepest level first.
        lits.sort_unstable_by_key(|&(v, _)| self.var2level[v as usize]);
        let mut acc = TRUE;
        for &(v, pos) in lits.iter().rev() {
            acc = if pos { self.mk_var(v, FALSE, acc) } else { self.mk_var(v, acc, FALSE) };
        }
        acc
    }

    /// Protect a root from garbage collection (refcounted; pair with
    /// [`Manager::unprotect`]).
    pub fn protect(&mut self, f: NodeId) {
        *self.protected.entry(f).or_insert(0) += 1;
    }

    /// Drop one protection count added by [`Manager::protect`].
    pub fn unprotect(&mut self, f: NodeId) {
        match self.protected.get_mut(&f) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.protected.remove(&f);
            }
            None => panic!("unprotect of unprotected node {f:?}"),
        }
    }

    /// Clear all operation caches if they hold more than `max_entries`
    /// memo entries. Caches are pure memoization — clearing them is always
    /// sound and costs only recomputation. Long fixpoints call this
    /// between iterations to bound memory (the caches, not the node arena,
    /// dominate the footprint of big runs). Returns whether a trim
    /// happened.
    pub fn maybe_trim_caches(&mut self, max_entries: usize) -> bool {
        if self.caches.len() > max_entries {
            self.caches.clear();
            true
        } else {
            false
        }
    }

    /// Arm (or, with 0, disarm) a live-node budget, clearing any latched
    /// exhaustion. The budget is enforced at the same governance
    /// checkpoints as the auto-reorder trigger (see
    /// [`Manager::maybe_reorder`]): when the live count exceeds it, the
    /// checkpoint collects garbage first, and only if the arena is *still*
    /// over budget does it latch [`Manager::budget_exhausted`] — a repair
    /// layer then aborts cleanly at its next cancellation boundary instead
    /// of letting the arena grow until the OOM killer fires.
    pub fn set_node_budget(&mut self, budget: usize) {
        self.node_budget = budget;
        self.budget_exhausted = false;
    }

    /// The armed live-node budget (0 = unlimited).
    pub fn node_budget(&self) -> usize {
        self.node_budget
    }

    /// Has a governance checkpoint found the arena irrecoverably over
    /// budget? Sticky until [`Manager::set_node_budget`] re-arms.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted
    }

    /// The budget half of the governance checkpoint (the reorder half
    /// lives in [`Manager::maybe_reorder`], which calls this first).
    /// `roots` must cover every external `NodeId` the caller still needs,
    /// exactly as for [`Manager::gc`].
    pub fn enforce_node_budget(&mut self, roots: &[NodeId]) {
        if self.node_budget == 0 || self.budget_exhausted || self.live_count <= self.node_budget {
            return;
        }
        // Over budget: garbage must never cause an abort, so collect and
        // re-measure before declaring exhaustion.
        self.gc(roots.iter().copied());
        if self.live_count > self.node_budget {
            self.budget_exhausted = true;
        }
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// Keeps every node reachable from `roots` or from a
    /// [`Manager::protect`]ed root; all other slots go to the free list and
    /// node ids of survivors remain stable. Memo entries touching a dead
    /// node are dropped; the rest stay (see [`Caches::retain_live`]), so a
    /// GC mid-fixpoint does not force the next iteration to recompute
    /// everything from scratch.
    pub fn gc<I: IntoIterator<Item = NodeId>>(&mut self, roots: I) {
        let mut marked = vec![false; self.nodes.len()];
        marked[0] = true;
        marked[1] = true;
        let mut stack: Vec<NodeId> = roots.into_iter().collect();
        stack.extend(self.protected.keys().copied());
        while let Some(f) = stack.pop() {
            let idx = f.0 as usize;
            if marked[idx] {
                continue;
            }
            marked[idx] = true;
            let node = self.nodes[idx];
            if !f.is_terminal() {
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        // Propagation above is top-down only through pushed children, which is
        // complete because children are pushed exactly when the parent is
        // first marked.
        let already_free: crate::hash::FxHashSet<u32> = self.free.iter().copied().collect();
        for (idx, &is_marked) in marked.iter().enumerate().skip(2) {
            if !is_marked && !already_free.contains(&(idx as u32)) {
                let node = self.nodes[idx];
                self.unique.remove(&node);
                self.free.push(idx as u32);
            }
        }
        self.live_count = self.nodes.len() - 2 - self.free.len();
        self.caches.retain_live(|f| marked[f.0 as usize]);
        self.gc_runs += 1;
    }

    /// Number of nodes reachable from `f`, including terminals.
    pub fn node_count(&self, f: NodeId) -> usize {
        self.node_count_many(&[f])
    }

    /// Number of distinct nodes reachable from any of `roots`, including
    /// terminals — shared structure is counted once, so this measures what
    /// a joint export (e.g. a checkpoint's invariant + span + `ms`) would
    /// actually cost, not the sum of per-root counts.
    pub fn node_count_many(&self, roots: &[NodeId]) -> usize {
        let mut seen = crate::hash::FxHashSet::default();
        let mut stack = roots.to_vec();
        while let Some(g) = stack.pop() {
            if seen.insert(g) && !g.is_terminal() {
                stack.push(self.lo(g));
                stack.push(self.hi(g));
            }
        }
        seen.len()
    }

    /// Validate the structural invariants of the arena: every live node is
    /// reduced (`lo != hi`), ordered (children at strictly greater levels),
    /// canonical (present in the unique table exactly once), and refers only
    /// to live slots. Panics with a description on the first violation.
    /// O(arena size); meant for tests and debugging, not hot paths.
    pub fn check_integrity(&self) {
        assert_eq!(self.var2level.len(), self.num_vars as usize, "var2level length");
        assert_eq!(self.level2var.len(), self.num_vars as usize, "level2var length");
        for v in 0..self.num_vars {
            let l = self.var2level[v as usize];
            assert!(l < self.num_vars, "variable {v} mapped to level {l} out of range");
            assert_eq!(
                self.level2var[l as usize], v,
                "var2level and level2var are not inverse permutations at variable {v}"
            );
        }
        let free: crate::hash::FxHashSet<u32> = self.free.iter().copied().collect();
        assert_eq!(free.len(), self.free.len(), "duplicate slots on the free list");
        for idx in 2..self.nodes.len() {
            let id = NodeId(idx as u32);
            if free.contains(&(idx as u32)) {
                continue;
            }
            let node = self.nodes[idx];
            assert!(node.lo != node.hi, "unreduced node {id:?}");
            assert!(node.var < self.num_vars, "node {id:?} variable out of range");
            let level = self.var2level[node.var as usize];
            for child in [node.lo, node.hi] {
                assert!(
                    (child.0 as usize) < self.nodes.len(),
                    "node {id:?} has dangling child {child:?}"
                );
                assert!(!free.contains(&child.0), "node {id:?} points to freed slot {child:?}");
                assert!(
                    level < self.level(child),
                    "order violation at {id:?}: level {} !< child {}",
                    level,
                    self.level(child)
                );
            }
            assert_eq!(
                self.unique.get(&node),
                Some(&id),
                "node {id:?} missing from or duplicated in the unique table"
            );
        }
        assert_eq!(
            self.unique.len(),
            self.nodes.len() - 2 - self.free.len(),
            "unique table size does not match live node count"
        );
        assert_eq!(
            self.live_count,
            self.nodes.len() - 2 - self.free.len(),
            "incremental live counter out of sync"
        );
        // Order-derived views of the interned sets/maps must match a fresh
        // recomputation under the current order.
        for (i, vars) in self.varsets.iter().enumerate() {
            assert_eq!(self.varsets_lvl[i], self.levels_of(vars), "stale varset level view {i}");
        }
        for (i, pairs) in self.varmaps.iter().enumerate() {
            assert_eq!(
                self.varmaps_lvl[i],
                self.varmap_levels(pairs),
                "stale varmap level view {i}"
            );
        }
    }

    /// Per-cache hit/miss snapshot across all six op caches and the unique
    /// table (see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            not: self.caches.not.counter(),
            apply: self.caches.apply.counter(),
            ite: self.caches.ite.counter(),
            quant: self.caches.quant.counter(),
            and_exists: self.caches.and_exists.counter(),
            rename: self.caches.rename.counter(),
            unique: CacheCounter {
                hits: self.unique_hits,
                misses: self.unique_misses,
                entries: self.unique.len(),
            },
        }
    }

    /// Snapshot of arena and cache counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            live_nodes: self.nodes.len() - 2 - self.free.len(),
            peak_live_nodes: self.peak_live,
            allocated_nodes: self.nodes.len() - 2,
            free_nodes: self.free.len(),
            cache_entries: self.caches.len(),
            gc_runs: self.gc_runs,
            unique_hits: self.unique_hits,
            unique_misses: self.unique_misses,
            reorder_runs: self.reorder_runs,
            reorder_swaps: self.reorder_swaps,
            reorder_aborted: self.reorder_aborted,
            post_reorder_nodes: self.post_reorder_nodes,
        }
    }

    /// The current levels of a list of variable indices, sorted ascending.
    pub(crate) fn levels_of(&self, vars: &[u32]) -> Vec<u32> {
        let mut levels: Vec<u32> = vars.iter().map(|&v| self.var2level[v as usize]).collect();
        levels.sort_unstable();
        levels
    }

    /// Level-space view of a variable map under the current order, sorted by
    /// source level. Asserts order preservation — the property that makes
    /// renaming a single linear rebuild. Grouped sifting (pairs move as one
    /// block) keeps every current/next map order-preserving by construction.
    pub(crate) fn varmap_levels(&self, pairs: &[(u32, u32)]) -> Vec<(u32, u32)> {
        let mut lvl: Vec<(u32, u32)> = pairs
            .iter()
            .map(|&(from, to)| (self.var2level[from as usize], self.var2level[to as usize]))
            .collect();
        lvl.sort_unstable();
        for w in lvl.windows(2) {
            assert!(w[0].1 < w[1].1, "variable map is not order-preserving");
        }
        lvl
    }

    /// Rebuild the level-space views of all interned varsets and varmaps —
    /// called after a reorder changed `var2level`.
    pub(crate) fn rebuild_order_views(&mut self) {
        for i in 0..self.varsets.len() {
            self.varsets_lvl[i] = self.levels_of(&self.varsets[i]);
        }
        for i in 0..self.varmaps.len() {
            self.varmaps_lvl[i] = self.varmap_levels(&self.varmaps[i]);
        }
    }

    /// Intern a set of variable indices for quantification; sorted and
    /// deduped.
    pub fn varset(&mut self, vars: &[u32]) -> crate::quant::VarSetId {
        let mut vs: Vec<u32> = vars.to_vec();
        vs.sort_unstable();
        vs.dedup();
        for &v in &vs {
            assert!(v < self.num_vars, "varset variable {v} out of range");
        }
        if let Some(&id) = self.varset_ids.get(&vs) {
            return crate::quant::VarSetId(id);
        }
        let id = self.varsets.len() as u32;
        let lvl = self.levels_of(&vs);
        self.varsets.push(vs.clone());
        self.varsets_lvl.push(lvl);
        self.varset_ids.insert(vs, id);
        crate::quant::VarSetId(id)
    }

    /// The variable indices of an interned variable set (sorted ascending).
    pub fn varset_levels(&self, vs: crate::quant::VarSetId) -> &[u32] {
        &self.varsets[vs.0 as usize]
    }

    /// Intern an **order-preserving** variable map `from → to` for renaming.
    ///
    /// Order preservation (`from` before `to` in the current order, pairwise
    /// consistently) is what makes renaming a single linear rebuild; it is
    /// asserted here and re-asserted after every reorder.
    pub fn varmap(&mut self, pairs: &[(u32, u32)]) -> crate::rename::VarMapId {
        let mut map: Vec<(u32, u32)> = pairs.to_vec();
        map.sort_unstable();
        map.dedup();
        for w in map.windows(2) {
            assert!(w[0].0 != w[1].0, "duplicate source variable {}", w[0].0);
        }
        for &(from, to) in &map {
            assert!(from < self.num_vars && to < self.num_vars, "varmap variable out of range");
        }
        let lvl = self.varmap_levels(&map);
        if let Some(&id) = self.varmap_ids.get(&map) {
            return crate::rename::VarMapId(id);
        }
        let id = self.varmaps.len() as u32;
        self.varmaps.push(map.clone());
        self.varmaps_lvl.push(lvl);
        self.varmap_ids.insert(map, id);
        crate::rename::VarMapId(id)
    }
}

impl std::fmt::Debug for Manager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Manager")
            .field("num_vars", &self.num_vars)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        assert_eq!(m.mk(1, a, a), a);
    }

    #[test]
    fn node_count_many_counts_shared_structure_once() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        // `b` is literally `ab`'s hi-child, so jointly they cost exactly
        // what `ab` costs alone — strictly less than the per-root sum.
        let joint = m.node_count_many(&[ab, b]);
        assert_eq!(joint, m.node_count(ab));
        assert!(joint < m.node_count(ab) + m.node_count(b));
        // Duplicated roots change nothing; no roots count nothing.
        assert_eq!(m.node_count_many(&[ab, ab]), m.node_count(ab));
        assert_eq!(m.node_count_many(&[]), 0);
    }

    #[test]
    fn mk_hash_conses() {
        let mut m = Manager::new(2);
        let f = m.mk(0, FALSE, TRUE);
        let g = m.mk(0, FALSE, TRUE);
        assert_eq!(f, g);
        assert_eq!(m.stats().live_nodes, 1);
    }

    #[test]
    fn var_and_nvar() {
        let mut m = Manager::new(1);
        let v = m.var(0);
        let nv = m.nvar(0);
        assert_ne!(v, nv);
        assert_eq!(m.lo(v), FALSE);
        assert_eq!(m.hi(v), TRUE);
        assert_eq!(m.lo(nv), TRUE);
        assert_eq!(m.hi(nv), FALSE);
    }

    #[test]
    fn cube_builds_conjunction() {
        let mut m = Manager::new(3);
        let c = m.cube(&[(2, true), (0, false)]);
        // ¬x0 ∧ x2: evaluate all 8 assignments.
        for bits in 0..8u32 {
            let assignment = [(bits & 1) != 0, (bits & 2) != 0, (bits & 4) != 0];
            let expected = !assignment[0] && assignment[2];
            assert_eq!(m.eval(c, &assignment), expected, "bits={bits:03b}");
        }
    }

    #[test]
    fn cube_conflicting_literals_is_false() {
        let mut m = Manager::new(1);
        assert_eq!(m.cube(&[(0, true), (0, false)]), FALSE);
    }

    #[test]
    fn cube_duplicate_literals_dedup() {
        let mut m = Manager::new(1);
        let c = m.cube(&[(0, true), (0, true)]);
        let v = m.var(0);
        assert_eq!(c, v);
    }

    #[test]
    fn gc_frees_unreachable_keeps_roots() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.and(a, b);
        let drop1 = m.var(2);
        let drop2 = m.or(drop1, keep);
        let live_before = m.stats().live_nodes;
        m.gc([keep]);
        let stats = m.stats();
        assert!(stats.live_nodes < live_before, "something should be freed");
        assert_eq!(stats.gc_runs, 1);
        // keep must still be intact and correct.
        assert!(m.eval(keep, &[true, true, false, false]));
        assert!(!m.eval(keep, &[true, false, false, false]));
        let _ = drop2; // id may now be recycled; never dereferenced again
    }

    #[test]
    fn gc_respects_protected_roots() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        m.protect(f);
        m.gc([]);
        assert!(m.eval(f, &[true, false]));
        assert!(!m.eval(f, &[true, true]));
        m.unprotect(f);
    }

    #[test]
    fn gc_reuses_free_slots() {
        let mut m = Manager::new(8);
        let junk: Vec<NodeId> = (0..8).map(|i| m.var(i)).collect();
        let allocated = m.stats().allocated_nodes;
        drop(junk);
        m.gc([]);
        assert_eq!(m.stats().free_nodes, allocated);
        // New allocations should reuse freed slots, not grow the arena.
        let _ = m.var(3);
        assert_eq!(m.stats().allocated_nodes, allocated);
    }

    #[test]
    fn node_budget_collects_garbage_before_latching() {
        let mut m = Manager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.and(a, b);
        // Garbage well past a tiny budget: the checkpoint must rescue via
        // GC rather than declare exhaustion.
        for i in 2..8 {
            let _ = m.var(i);
        }
        m.set_node_budget(4);
        assert!(m.stats().live_nodes > 4, "setup: arena over budget");
        m.enforce_node_budget(&[keep]);
        assert!(!m.budget_exhausted(), "GC alone recovers: no exhaustion");
        assert!(m.stats().live_nodes <= 4);
        assert!(m.eval(keep, &[true, true, false, false, false, false, false, false]));
    }

    #[test]
    fn node_budget_latches_when_live_nodes_exceed_it() {
        let mut m = Manager::new(8);
        let roots: Vec<NodeId> = (0..8).map(|i| m.var(i)).collect();
        m.set_node_budget(4);
        m.enforce_node_budget(&roots);
        assert!(m.budget_exhausted(), "8 live roots cannot fit a budget of 4");
        // Sticky until re-armed, and a zero budget disarms entirely.
        m.enforce_node_budget(&roots);
        assert!(m.budget_exhausted());
        m.set_node_budget(0);
        assert!(!m.budget_exhausted(), "re-arming clears the latch");
        m.enforce_node_budget(&roots);
        assert!(!m.budget_exhausted(), "budget 0 = unlimited");
    }

    #[test]
    fn maybe_reorder_runs_the_budget_checkpoint_in_every_mode() {
        // auto_reorder is None (never armed): the budget must still latch.
        let mut m = Manager::new(8);
        let roots: Vec<NodeId> = (0..8).map(|i| m.var(i)).collect();
        m.set_node_budget(4);
        assert!(m.maybe_reorder(&roots).is_none());
        assert!(m.budget_exhausted(), "checkpoint fires with reordering off");
    }

    #[test]
    fn double_gc_does_not_double_free() {
        let mut m = Manager::new(4);
        let _junk = m.var(2);
        m.gc([]);
        let free_after_first = m.stats().free_nodes;
        m.gc([]);
        assert_eq!(m.stats().free_nodes, free_after_first);
    }

    #[test]
    #[should_panic(expected = "unprotect of unprotected")]
    fn unprotect_without_protect_panics() {
        let mut m = Manager::new(1);
        let v = m.var(0);
        m.unprotect(v);
    }

    #[test]
    fn integrity_holds_through_ops_and_gc() {
        let mut m = Manager::new(6);
        let mut fs = Vec::new();
        for i in 0..6 {
            let v = m.var(i);
            fs.push(v);
        }
        let mut acc = fs[0];
        for &f in &fs[1..] {
            let x = m.xor(acc, f);
            let a = m.and(acc, f);
            acc = m.or(x, a);
        }
        m.check_integrity();
        m.gc([acc]);
        m.check_integrity();
        // Rebuild on top of a post-GC arena with a free list.
        let b = m.var(3);
        let g = m.and(acc, b);
        m.check_integrity();
        assert_ne!(g, FALSE);
    }

    #[test]
    fn trim_caches_respects_threshold() {
        let mut m = Manager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b);
        assert!(m.stats().cache_entries > 0);
        assert!(!m.maybe_trim_caches(1_000_000), "below threshold: no trim");
        assert!(m.maybe_trim_caches(0), "above threshold: trim");
        assert_eq!(m.stats().cache_entries, 0);
        m.check_integrity();
    }

    #[test]
    fn cache_stats_cover_all_six_op_caches() {
        let mut m = Manager::new(6);
        let (a, b, c) = (m.var(0), m.var(2), m.var(4));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let _ = m.not(f);
        let _ = m.ite(a, f, b);
        let vs = m.varset(&[0, 2]);
        let _ = m.exists(f, vs);
        let _ = m.and_exists(f, ab, vs);
        let map = m.varmap(&[(0, 1), (2, 3), (4, 5)]);
        let _ = m.rename(f, map);
        let cs = m.cache_stats();
        for (name, c) in cs.op_caches() {
            assert!(c.lookups() > 0, "cache {name} never probed");
            assert!((0.0..=1.0).contains(&c.hit_rate()), "cache {name} rate out of range");
        }
        assert!(cs.unique.lookups() > 0);
        // A repeated operation must be a pure cache hit.
        let before = m.cache_stats().apply;
        let ab2 = m.and(a, b);
        assert_eq!(ab2, ab);
        let after = m.cache_stats().apply;
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn cache_counters_survive_trims() {
        let mut m = Manager::new(4);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b);
        let before = m.cache_stats();
        assert!(m.maybe_trim_caches(0));
        let after = m.cache_stats();
        assert_eq!(after.apply.hits, before.apply.hits);
        assert_eq!(after.apply.misses, before.apply.misses);
        assert_eq!(after.apply.entries, 0, "trim empties entries");
    }

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let m = Manager::new(1);
        let cs = m.cache_stats();
        assert_eq!(cs.ite.hit_rate(), 0.0);
        assert_eq!(cs.ite.lookups(), 0);
    }

    #[test]
    fn varset_interning_dedups() {
        let mut m = Manager::new(4);
        let a = m.varset(&[3, 1, 1]);
        let b = m.varset(&[1, 3]);
        assert_eq!(a, b);
        assert_eq!(m.varset_levels(a), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "not order-preserving")]
    fn varmap_rejects_order_violations() {
        let mut m = Manager::new(4);
        let _ = m.varmap(&[(0, 3), (1, 2)]);
    }

    #[test]
    fn add_vars_extends_universe() {
        let mut m = Manager::new(1);
        m.add_vars(2);
        assert_eq!(m.num_vars(), 3);
        let v = m.var(2); // would panic without add_vars
        assert_eq!(m.level(v), 2);
    }
}

//! # ftrepair-bdd — a from-scratch ROBDD engine
//!
//! Reduced Ordered Binary Decision Diagrams are the symbolic substrate of the
//! lazy-repair tool: program transition relations, invariants, fault-spans and
//! read-restriction *groups* are all boolean functions over a few hundred
//! variables, and every fixpoint in the repair algorithms is a loop of BDD
//! operations.
//!
//! The engine is deliberately classical:
//!
//! * a flat node arena with a hash-consing *unique table* guaranteeing
//!   canonicity (structural equality ⇔ pointer equality),
//! * memoized `NOT`/`AND`/`OR`/`XOR`/`ITE`,
//! * set-quantification (`exists`/`forall`) over interned variable sets,
//! * fused relational products (`and_exists`) with early termination — the
//!   workhorse of image/preimage computation,
//! * order-preserving variable renaming (used to map next-state variables back
//!   to current-state variables),
//! * sat-counting, deterministic minterm picking and cube iteration,
//! * mark-and-sweep garbage collection with stable node ids,
//! * dynamic variable reordering — in-place adjacent-level swaps with
//!   grouped Rudell sifting on top and an optional auto-reorder trigger
//!   (`reorder.rs`); node ids and functions survive a reorder, only the
//!   order (and the node count) changes,
//! * a portable serialized DAG form ([`SerializedBdd`]) used to ship BDDs
//!   between managers (e.g. to per-thread managers in the parallel Step 2 of
//!   the lazy-repair algorithm), recording the source variable order so
//!   managers with diverged orders can still exchange functions.
//!
//! There are **no complemented edges**: plain canonical nodes keep invariants
//! simple enough to property-test exhaustively against a truth-table oracle
//! (see `tests/`).
//!
//! ## Quick example
//!
//! ```
//! use ftrepair_bdd::Manager;
//!
//! let mut m = Manager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let f = m.and(a, b);
//! let g = m.or(f, c);
//! assert_eq!(m.sat_count(g), 5.0); // a∧b ∨ c has 5 satisfying assignments
//! ```

mod dump;
mod hash;
mod manager;
mod node;
mod ops;
mod quant;
mod rename;
mod reorder;
pub mod rng;
mod sat;

pub use dump::{DecodeError, ImportError, SerializedBdd};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use manager::{CacheCounter, CacheStats, Manager, ManagerStats};
pub use node::{NodeId, FALSE, TRUE};
pub use quant::VarSetId;
pub use rename::VarMapId;
pub use reorder::ReorderOutcome;
pub use rng::SplitMix64;
pub use sat::CubeIter;

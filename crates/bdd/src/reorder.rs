//! Dynamic variable reordering: in-place adjacent-level swap and Rudell's
//! sifting.
//!
//! The swap primitive exchanges two adjacent levels by rewriting only the
//! nodes of the *upper* level that actually depend on the lower one, **in
//! place**: a rewritten slot keeps its `NodeId` and its function, so every
//! caller-held handle stays valid. Nodes of the lower level and everything
//! above/below the swapped pair are untouched. Canonicity makes the rewrite
//! collision-free: a rewritten node's function depends on the upper variable,
//! so it can never coincide with a pre-existing node of the lower level.
//!
//! Sifting (Rudell 1993) moves one variable — here, one *block* of variables
//! — through every level position via adjacent swaps, records the arena size
//! at each stop, and parks it at the best position found. Blocks are sifted
//! largest-population-first, and a direction is abandoned once the arena
//! outgrows a configurable factor of its starting size.
//!
//! Blocks exist because the symbolic layer interleaves current/next state
//! bits: `image`/`preimage` renaming is a single linear rebuild only while
//! each `(current, next)` pair occupies adjacent levels, so the pair must
//! move as a unit ([`Manager::set_reorder_groups`]).
//!
//! Reordering must never interleave with an in-flight recursive operation:
//! the op caches and every local `level` variable in `ops.rs`/`quant.rs`
//! assume a frozen order. Callers therefore invoke
//! [`Manager::maybe_reorder`] only at quiescent points — the repair
//! algorithms use the same loop boundaries where `cancel::Token` is polled.

use crate::manager::Manager;
use crate::node::{Node, NodeId};

/// Default max-growth factor for sifting: a direction is abandoned once the
/// arena exceeds this multiple of its size when the block's sift began.
pub(crate) const DEFAULT_MAX_GROWTH: f64 = 1.2;

/// Armed auto-reorder trigger (see [`Manager::set_auto_reorder`]).
#[derive(Clone, Copy, Debug)]
pub(crate) struct AutoReorder {
    /// Fire the next reorder when the live-node count reaches this.
    pub threshold: usize,
    /// Configured floor the threshold never drops below.
    pub initial: usize,
}

/// Summary of one [`Manager::reorder_sift`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderOutcome {
    /// Adjacent-level swaps performed.
    pub swaps: u64,
    /// Sift directions abandoned by the max-growth bound.
    pub aborted: u64,
    /// Live nodes entering the run (after the initial GC).
    pub nodes_before: usize,
    /// Live nodes leaving the run.
    pub nodes_after: usize,
}

/// Transient bookkeeping that exists only while a reorder runs.
///
/// The arena has no reference counts in normal operation (GC is
/// mark-and-sweep); a reorder builds an in-degree census once, maintains it
/// through every swap so nodes orphaned by a rewrite are freed eagerly, and
/// throws it away at the end. Slots freed mid-run go to `freed`, not the
/// manager's free list: the per-variable slot lists may still mention them,
/// so they must not be recycled until the run completes.
struct Workspace {
    /// In-degree of each slot from live parents, plus one per external root
    /// or protected entry. A live node's count reaching zero frees it.
    refs: Vec<u32>,
    /// Slots freed during this run (skipped lazily in `by_var`).
    dead: Vec<bool>,
    /// Live slots per variable index.
    by_var: Vec<Vec<u32>>,
    /// Slots freed during this run, handed to the manager's free list at the
    /// end.
    freed: Vec<u32>,
    swaps: u64,
}

impl Workspace {
    #[inline]
    fn inc(&mut self, f: NodeId) {
        if !f.is_terminal() {
            self.refs[f.0 as usize] += 1;
        }
    }
}

impl Manager {
    /// The current variable order: `order[level] = variable index`.
    pub fn current_order(&self) -> Vec<u32> {
        self.level2var.clone()
    }

    /// Arm (or disarm, with `None`) the auto-reorder trigger:
    /// [`Manager::maybe_reorder`] sifts once the live-node count reaches the
    /// threshold, then re-arms at twice the post-sift size (never below the
    /// configured initial threshold), so each subsequent trigger requires the
    /// arena to double again.
    pub fn set_auto_reorder(&mut self, threshold: Option<usize>) {
        self.auto_reorder = threshold.map(|t| {
            let t = t.max(16);
            AutoReorder { threshold: t, initial: t }
        });
    }

    /// Set the sifting max-growth factor (default 1.2). Must be ≥ 1.
    pub fn set_reorder_max_growth(&mut self, factor: f64) {
        assert!(factor >= 1.0, "max-growth factor must be at least 1");
        self.max_growth = factor;
    }

    /// Declare groups of variables that sift as one block. Each group must be
    /// disjoint from the others and occupy contiguous levels in the current
    /// order; variables in no group sift alone. The symbolic layer groups
    /// every `(current, next)` bit pair so renaming stays order-preserving.
    pub fn set_reorder_groups(&mut self, groups: &[Vec<u32>]) {
        let mut seen = vec![false; self.num_vars() as usize];
        for group in groups {
            assert!(!group.is_empty(), "empty reorder group");
            for &v in group {
                assert!(v < self.num_vars(), "reorder group variable {v} out of range");
                assert!(!seen[v as usize], "variable {v} appears in two reorder groups");
                seen[v as usize] = true;
            }
            let levels = self.levels_of(group);
            for w in levels.windows(2) {
                assert!(w[1] == w[0] + 1, "reorder group is not contiguous in the current order");
            }
        }
        self.groups = groups.to_vec();
    }

    /// Fire the auto-reorder trigger if it is armed and the live-node count
    /// has reached its threshold. `roots` must cover every external
    /// `NodeId` the caller intends to use again that is not covered by
    /// [`Manager::protect`]; anything unreachable from them is garbage.
    ///
    /// Arena growth during a fixpoint is usually *garbage* — dead
    /// intermediates no operation will touch again — so the trigger
    /// collects first, and pays for a sift only when the collection alone
    /// did not bring the arena back under the threshold (growth in the
    /// functions themselves, which a better order can actually shrink).
    /// Either way it re-arms at twice the surviving size, never below the
    /// configured floor.
    pub fn maybe_reorder(&mut self, roots: &[NodeId]) -> Option<ReorderOutcome> {
        // The governance checkpoint rides the same call sites: enforce the
        // live-node budget first so an over-budget arena latches exhaustion
        // (after a rescue GC) even when reordering itself is disabled.
        self.enforce_node_budget(roots);
        let ar = self.auto_reorder?;
        if self.live_count < ar.threshold {
            return None;
        }
        self.gc(roots.iter().copied());
        let out =
            if self.live_count >= ar.threshold { Some(self.reorder_sift(roots)) } else { None };
        let surviving = self.live_count;
        if let Some(ar) = &mut self.auto_reorder {
            ar.threshold = (2 * surviving).max(ar.initial);
        }
        out
    }

    /// One full sifting pass (Rudell): GC down to `roots` ∪ protected, then
    /// move each block of variables — largest level population first — to
    /// its locally optimal position. Node ids of surviving nodes are stable
    /// and every function is preserved; only the order (and therefore the
    /// node *count*) changes. Op-cache entries touching a freed slot are
    /// dropped; the rest remain valid (cached results are function
    /// identities, independent of the order).
    pub fn reorder_sift(&mut self, roots: &[NodeId]) -> ReorderOutcome {
        // Start from a garbage-free arena: dead nodes would distort both the
        // census and the size signal sifting minimizes. The GC also clears
        // the op caches, which may hold ids about to be freed.
        self.gc(roots.iter().copied());
        let before = self.live_count;
        let mut ws = self.census(roots);
        let mut blocks = self.build_blocks();

        // Sift order: blocks by live-node population, largest first.
        let mut order: Vec<usize> = (0..blocks.len()).collect();
        let population = |b: &Vec<u32>, ws: &Workspace| -> usize {
            b.iter().map(|&v| ws.by_var[v as usize].len()).sum()
        };
        order.sort_by_key(|&i| std::cmp::Reverse(population(&blocks[i], &ws)));
        // Blocks move while sifting, so track each target by its lead
        // variable, not by position.
        let targets: Vec<u32> = order.iter().map(|&i| blocks[i][0]).collect();

        let mut aborted = 0u64;
        for lead in targets {
            let pos = blocks.iter().position(|b| b[0] == lead).expect("block vanished");
            aborted += self.sift_block(&mut blocks, pos, &mut ws);
        }

        // Recycle slots freed during the run and refresh order-derived state.
        self.free.append(&mut ws.freed);
        self.live_count = self.nodes.len() - 2 - self.free.len();
        self.rebuild_order_views();
        // Memo entries are function identities, and surviving slots keep
        // their function through a reorder — only entries touching a slot
        // freed during the run are stale.
        self.caches.retain_live(|f| !ws.dead[f.0 as usize]);

        self.reorder_runs += 1;
        self.reorder_swaps += ws.swaps;
        self.reorder_aborted += aborted;
        self.post_reorder_nodes = self.live_count;
        ReorderOutcome {
            swaps: ws.swaps,
            aborted,
            nodes_before: before,
            nodes_after: self.live_count,
        }
    }

    /// Build the in-degree census and per-variable slot lists over the
    /// (garbage-free) arena.
    fn census(&self, roots: &[NodeId]) -> Workspace {
        let n = self.nodes.len();
        let mut refs = vec![0u32; n];
        let mut dead = vec![false; n];
        for &slot in &self.free {
            dead[slot as usize] = true;
        }
        let mut by_var: Vec<Vec<u32>> = vec![Vec::new(); self.num_vars() as usize];
        for (idx, &node) in self.nodes.iter().enumerate().skip(2) {
            if dead[idx] {
                continue;
            }
            by_var[node.var as usize].push(idx as u32);
            for child in [node.lo, node.hi] {
                if !child.is_terminal() {
                    refs[child.0 as usize] += 1;
                }
            }
        }
        for &r in roots {
            if !r.is_terminal() {
                refs[r.0 as usize] += 1;
            }
        }
        for &r in self.protected.keys() {
            if !r.is_terminal() {
                refs[r.0 as usize] += 1;
            }
        }
        Workspace { refs, dead, by_var, freed: Vec::new(), swaps: 0 }
    }

    /// The block sequence in current level order: declared groups move as
    /// units, every other variable is a singleton. Inner vectors list the
    /// block's variables top-to-bottom.
    fn build_blocks(&self) -> Vec<Vec<u32>> {
        let mut group_of = vec![usize::MAX; self.num_vars() as usize];
        for (gi, group) in self.groups.iter().enumerate() {
            for &v in group {
                group_of[v as usize] = gi;
            }
        }
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut level = 0u32;
        while level < self.num_vars() {
            let v = self.level2var[level as usize];
            let gi = group_of[v as usize];
            if gi == usize::MAX {
                blocks.push(vec![v]);
                level += 1;
            } else {
                let group = &self.groups[gi];
                let levels = self.levels_of(group);
                assert!(
                    levels[0] == level && *levels.last().unwrap() == level + group.len() as u32 - 1,
                    "reorder group no longer contiguous"
                );
                let mut vars: Vec<u32> = group.clone();
                vars.sort_unstable_by_key(|&v| self.var2level[v as usize]);
                level += vars.len() as u32;
                blocks.push(vars);
            }
        }
        blocks
    }

    /// Sift the block at position `p` to its best position; returns how many
    /// directions the max-growth bound cut short.
    fn sift_block(&mut self, blocks: &mut [Vec<u32>], mut p: usize, ws: &mut Workspace) -> u64 {
        let start = self.live_count;
        let limit = ((start as f64) * self.max_growth).ceil() as usize + 16;
        let mut best_size = start;
        let mut best_pos = p;
        let mut aborts = 0u64;
        // Downward pass.
        while p + 1 < blocks.len() {
            self.swap_blocks(blocks, p, ws);
            p += 1;
            if self.live_count < best_size {
                best_size = self.live_count;
                best_pos = p;
            }
            if self.live_count > limit {
                aborts += 1;
                break;
            }
        }
        // Upward pass, passing back through the start position.
        while p > 0 {
            self.swap_blocks(blocks, p - 1, ws);
            p -= 1;
            if self.live_count < best_size {
                best_size = self.live_count;
                best_pos = p;
            }
            if self.live_count > limit {
                aborts += 1;
                break;
            }
        }
        // Park at the best position seen.
        while p < best_pos {
            self.swap_blocks(blocks, p, ws);
            p += 1;
        }
        while p > best_pos {
            self.swap_blocks(blocks, p - 1, ws);
            p -= 1;
        }
        debug_assert_eq!(
            self.live_count, best_size,
            "returning to a seen position must reproduce its size"
        );
        aborts
    }

    /// Exchange adjacent blocks at positions `p` and `p + 1` by bubbling each
    /// lower-block variable up through the upper block (`m·n` adjacent
    /// swaps). Relative order *within* each block is preserved.
    fn swap_blocks(&mut self, blocks: &mut [Vec<u32>], p: usize, ws: &mut Workspace) {
        let m = blocks[p].len() as u32;
        let n = blocks[p + 1].len() as u32;
        let top = self.var2level[blocks[p][0] as usize];
        for i in 0..n {
            let from = top + m + i;
            let to = top + i;
            let mut l = from;
            while l > to {
                self.swap_adjacent(l - 1, ws);
                l -= 1;
            }
        }
        blocks.swap(p, p + 1);
    }

    /// Exchange levels `l` and `l + 1`.
    ///
    /// Writing `x` for the variable at level `l` and `y` for the one below:
    /// only x-nodes with a y-child change. Such a node `(x, lo, hi)` encodes
    /// the Shannon expansion over `(x, y)` with cofactors `f00, f01, f10,
    /// f11`; the same function expanded over `(y, x)` is
    /// `(y, (x, f00, f10), (x, f01, f11))`, which is written back **into the
    /// same slot** so the node's id and function survive. x-nodes without a
    /// y-child, all y-nodes, and everything else keep their meaning because
    /// node identity is the stable variable index, not the level.
    fn swap_adjacent(&mut self, l: u32, ws: &mut Workspace) {
        ws.swaps += 1;
        let x = self.level2var[l as usize];
        let y = self.level2var[l as usize + 1];
        // Exchange the two levels in the order maps up front; the surgery
        // below works purely on variable indices.
        self.level2var.swap(l as usize, l as usize + 1);
        self.var2level[x as usize] = l + 1;
        self.var2level[y as usize] = l;

        // Partition the x-nodes: nodes without a y-child are untouched.
        let xs = std::mem::take(&mut ws.by_var[x as usize]);
        let mut keep: Vec<u32> = Vec::with_capacity(xs.len());
        let mut rewrite: Vec<u32> = Vec::new();
        for slot in xs {
            if ws.dead[slot as usize] {
                continue;
            }
            let node = self.nodes[slot as usize];
            debug_assert_eq!(node.var, x);
            let lo_y = self.nodes[node.lo.0 as usize].var == y;
            let hi_y = self.nodes[node.hi.0 as usize].var == y;
            if lo_y || hi_y {
                rewrite.push(slot);
            } else {
                keep.push(slot);
            }
        }
        // Every node to be rewritten leaves the unique table before any
        // rewrite runs, so hash-consing during the rewrite can never resolve
        // to a stale pre-swap entry.
        for &slot in &rewrite {
            self.unique.remove(&self.nodes[slot as usize]);
        }
        ws.by_var[x as usize] = keep;

        for slot in rewrite {
            let Node { lo, hi, .. } = self.nodes[slot as usize];
            let lo_node = self.nodes[lo.0 as usize];
            let hi_node = self.nodes[hi.0 as usize];
            let (f00, f01) = if lo_node.var == y { (lo_node.lo, lo_node.hi) } else { (lo, lo) };
            let (f10, f11) = if hi_node.var == y { (hi_node.lo, hi_node.hi) } else { (hi, hi) };
            let n0 = self.swap_mk(x, f00, f10, ws);
            let n1 = self.swap_mk(x, f01, f11, ws);
            // n0 == n1 would need lo and hi to share both cofactor pairs,
            // which contradicts this node being in the rewrite set.
            debug_assert_ne!(n0, n1, "rewritten node would be unreduced");
            ws.inc(n0);
            ws.inc(n1);
            let new_node = Node { var: y, lo: n0, hi: n1 };
            self.nodes[slot as usize] = new_node;
            self.unique.insert(new_node, NodeId(slot));
            ws.by_var[y as usize].push(slot);
            // Release the old children only after the new ones are held, so
            // shared structure never dips to zero in between.
            self.dec_ref(lo, ws);
            self.dec_ref(hi, ws);
        }
    }

    /// Hash-consing constructor used during a swap: like `mk_var`, but it
    /// maintains the transient refcounts and per-variable lists.
    fn swap_mk(&mut self, var: u32, lo: NodeId, hi: NodeId, ws: &mut Workspace) -> NodeId {
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&node) {
            self.unique_hits += 1;
            return id;
        }
        self.unique_misses += 1;
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot as usize] = node;
                NodeId(slot)
            }
            None => {
                let slot = u32::try_from(self.nodes.len()).expect("arena exceeds u32 indices");
                self.nodes.push(node);
                ws.refs.push(0);
                ws.dead.push(false);
                NodeId(slot)
            }
        };
        let idx = id.0 as usize;
        ws.refs[idx] = 0;
        ws.dead[idx] = false;
        self.unique.insert(node, id);
        ws.inc(lo);
        ws.inc(hi);
        ws.by_var[var as usize].push(id.0);
        self.live_count += 1;
        if self.live_count > self.peak_live {
            self.peak_live = self.live_count;
        }
        id
    }

    /// Drop one reference from `f`; frees it (and cascades into its
    /// children) when the count reaches zero. Roots and protected nodes hold
    /// an external reference, so they can never be freed here.
    fn dec_ref(&mut self, f: NodeId, ws: &mut Workspace) {
        if f.is_terminal() {
            return;
        }
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            let idx = g.0 as usize;
            debug_assert!(ws.refs[idx] > 0, "refcount underflow at {g:?}");
            ws.refs[idx] -= 1;
            if ws.refs[idx] == 0 {
                let node = self.nodes[idx];
                self.unique.remove(&node);
                ws.dead[idx] = true;
                ws.freed.push(g.0);
                self.live_count -= 1;
                if !node.lo.is_terminal() {
                    stack.push(node.lo);
                }
                if !node.hi.is_terminal() {
                    stack.push(node.hi);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FALSE, TRUE};

    /// A function whose size is extremely order-sensitive:
    /// `(x0 ∧ x_n) ∨ (x1 ∧ x_{n+1}) ∨ …` — linear when pairs are adjacent,
    /// exponential when the two halves are separated.
    fn pairing_function(m: &mut Manager, pairs: u32) -> NodeId {
        let mut f = FALSE;
        for i in 0..pairs {
            let a = m.var(i);
            let b = m.var(pairs + i);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        f
    }

    #[test]
    fn sift_shrinks_pairing_function() {
        let mut m = Manager::new(16);
        let f = pairing_function(&mut m, 8);
        m.gc([f]);
        let before = m.stats().live_nodes;
        let truth: Vec<bool> = (0..1u32 << 16)
            .step_by(257) // sparse sample of the truth table
            .map(|bits| {
                let a: Vec<bool> = (0..16).map(|i| (bits >> i) & 1 == 1).collect();
                m.eval(f, &a)
            })
            .collect();
        let out = m.reorder_sift(&[f]);
        m.check_integrity();
        assert_eq!(out.nodes_before, before);
        assert!(
            out.nodes_after * 4 <= before,
            "sifting should collapse the pairing function: {before} -> {}",
            out.nodes_after
        );
        assert!(out.swaps > 0);
        // Function (by stable variable index) unchanged.
        for (k, bits) in (0..1u32 << 16).step_by(257).enumerate() {
            let a: Vec<bool> = (0..16).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(m.eval(f, &a), truth[k], "bits={bits}");
        }
        let stats = m.stats();
        assert_eq!(stats.reorder_runs, 1);
        assert_eq!(stats.post_reorder_nodes, out.nodes_after);
    }

    #[test]
    fn swap_preserves_ids_and_functions() {
        let mut m = Manager::new(4);
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let g = m.imp(ab, cd);
        let mut ws = m.census(&[f, g]);
        m.swap_adjacent(1, &mut ws); // exchange variables 1 and 2
        m.free.append(&mut ws.freed);
        m.live_count = m.nodes.len() - 2 - m.free.len();
        m.rebuild_order_views();
        m.caches.clear();
        m.check_integrity();
        assert_eq!(m.current_order(), vec![0, 2, 1, 3]);
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            let expected_f = (asg[0] && asg[1]) || (asg[2] ^ asg[3]);
            let expected_g = !(asg[0] && asg[1]) || (asg[2] ^ asg[3]);
            assert_eq!(m.eval(f, &asg), expected_f, "f at {bits:04b}");
            assert_eq!(m.eval(g, &asg), expected_g, "g at {bits:04b}");
        }
    }

    #[test]
    fn grouped_sift_keeps_pairs_adjacent() {
        let mut m = Manager::new(8);
        // Pair up (0,1), (2,3), (4,5), (6,7) like current/next bits.
        let groups: Vec<Vec<u32>> = (0..4).map(|g| vec![2 * g, 2 * g + 1]).collect();
        m.set_reorder_groups(&groups);
        // Make variables 0 and 6 strongly related so sifting wants to move
        // their pairs together.
        let (a, b) = (m.var(0), m.var(6));
        let ab = m.xor(a, b);
        let (c, d) = (m.var(2), m.var(5));
        let cd = m.and(c, d);
        let f = m.or(ab, cd);
        let _ = m.reorder_sift(&[f]);
        m.check_integrity();
        let order = m.current_order();
        for g in 0..4u32 {
            let cur = order.iter().position(|&v| v == 2 * g).unwrap();
            let next = order.iter().position(|&v| v == 2 * g + 1).unwrap();
            assert_eq!(next, cur + 1, "pair {g} split: order {order:?}");
        }
    }

    #[test]
    fn auto_reorder_fires_and_rearms() {
        let mut m = Manager::new(16);
        m.set_auto_reorder(Some(32));
        assert!(m.maybe_reorder(&[]).is_none(), "below threshold");
        let f = pairing_function(&mut m, 8);
        let out = m.maybe_reorder(&[f]).expect("should fire above threshold");
        assert!(out.nodes_after <= out.nodes_before);
        m.check_integrity();
        // Re-armed: an immediate second call must not fire again.
        assert!(m.maybe_reorder(&[f]).is_none());
        let stats = m.stats();
        assert_eq!(stats.reorder_runs, 1);
        assert!(stats.reorder_swaps > 0);
    }

    #[test]
    fn reorder_respects_protected_roots() {
        let mut m = Manager::new(6);
        let (a, b) = (m.var(1), m.var(4));
        let f = m.xor(a, b);
        m.protect(f);
        let _ = m.reorder_sift(&[]); // no explicit roots: protection must hold f
        m.check_integrity();
        assert!(m.eval(f, &[false, true, false, false, false, false]));
        assert!(!m.eval(f, &[false, true, false, false, true, false]));
        m.unprotect(f);
    }

    #[test]
    fn interned_sets_and_maps_survive_reorder() {
        let mut m = Manager::new(6);
        let groups: Vec<Vec<u32>> = (0..3).map(|g| vec![2 * g, 2 * g + 1]).collect();
        m.set_reorder_groups(&groups);
        let (a, b, c) = (m.var(0), m.var(2), m.var(4));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let cur = m.varset(&[0, 2, 4]);
        let up = m.varmap(&[(0, 1), (2, 3), (4, 5)]);
        let shifted = m.rename(f, up);
        let _ = m.reorder_sift(&[f, shifted]);
        m.check_integrity();
        // Quantification and renaming still work against the new order.
        let ex = m.exists(f, cur);
        assert_eq!(ex, TRUE);
        let shifted2 = m.rename(f, up);
        assert_eq!(shifted2, shifted, "rename result must be stable across reorder");
    }

    #[test]
    fn sift_on_empty_manager_is_a_noop() {
        let mut m = Manager::new(4);
        let out = m.reorder_sift(&[]);
        assert_eq!(out.nodes_before, 0);
        assert_eq!(out.nodes_after, 0);
        m.check_integrity();
    }

    #[test]
    #[should_panic(expected = "two reorder groups")]
    fn overlapping_groups_rejected() {
        let mut m = Manager::new(4);
        m.set_reorder_groups(&[vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn non_contiguous_group_rejected() {
        let mut m = Manager::new(4);
        m.set_reorder_groups(&[vec![0, 2]]);
    }
}

//! Quantification: `∃ V. f`, `∀ V. f`, and the fused relational product
//! `∃ V. f ∧ g` that image/preimage computation is built on.

use crate::manager::Manager;
use crate::node::{NodeId, FALSE, TRUE};

/// Handle to an interned, sorted set of variable levels
/// (see [`Manager::varset`]). Interning keeps cache keys one word wide and
/// makes set equality O(1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarSetId(pub(crate) u32);

const Q_EXISTS: u8 = 0;
const Q_FORALL: u8 = 1;

impl Manager {
    /// `∃ vs. f`: erase the variables in `vs`, keeping assignments that have
    /// *some* completion satisfying `f`.
    pub fn exists(&mut self, f: NodeId, vs: VarSetId) -> NodeId {
        self.quantify(f, vs, Q_EXISTS)
    }

    /// `∀ vs. f`: keep assignments all of whose completions satisfy `f`.
    pub fn forall(&mut self, f: NodeId, vs: VarSetId) -> NodeId {
        self.quantify(f, vs, Q_FORALL)
    }

    fn quantify(&mut self, f: NodeId, vs: VarSetId, q: u8) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        // Recursion works in level space: `varsets_lvl` is the interned
        // variable set viewed under the current order.
        let levels = &self.varsets_lvl[vs.0 as usize];
        let last = match levels.last() {
            Some(&l) => l,
            None => return f,
        };
        self.quantify_rec(f, vs, last, q)
    }

    fn quantify_rec(&mut self, f: NodeId, vs: VarSetId, last: u32, q: u8) -> NodeId {
        let level = self.level(f);
        // Below the last quantified variable nothing changes.
        if f.is_terminal() || level > last {
            return f;
        }
        if let Some(r) = self.caches.quant.get(&(q, f, vs.0)) {
            return r;
        }
        let (lo, hi) = (self.lo(f), self.hi(f));
        let qlo = self.quantify_rec(lo, vs, last, q);
        let qhi = self.quantify_rec(hi, vs, last, q);
        let quantified = self.varsets_lvl[vs.0 as usize].binary_search(&level).is_ok();
        let r = if quantified {
            if q == Q_EXISTS {
                self.or(qlo, qhi)
            } else {
                self.and(qlo, qhi)
            }
        } else {
            self.mk(level, qlo, qhi)
        };
        self.caches.quant.insert((q, f, vs.0), r);
        r
    }

    /// The relational product `∃ vs. f ∧ g`, fused so the conjunction is
    /// never materialized. With `f` a state set and `g` a transition
    /// relation this is one image/preimage step.
    pub fn and_exists(&mut self, f: NodeId, g: NodeId, vs: VarSetId) -> NodeId {
        let last = match self.varsets_lvl[vs.0 as usize].last() {
            Some(&l) => l,
            None => return self.and(f, g),
        };
        self.and_exists_rec(f, g, vs, last)
    }

    fn and_exists_rec(&mut self, f: NodeId, g: NodeId, vs: VarSetId, last: u32) -> NodeId {
        // Terminal cases of the conjunction.
        if f == FALSE || g == FALSE {
            return FALSE;
        }
        if f == TRUE && g == TRUE {
            return TRUE;
        }
        if f == g {
            return self.quantify_rec(f, vs, last, Q_EXISTS);
        }
        let (lf, lg) = (self.level(f), self.level(g));
        let level = lf.min(lg);
        if level > last {
            // No quantified variable remains in either operand's support.
            return self.and(f, g);
        }
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.caches.and_exists.get(&(a, b, vs.0)) {
            return r;
        }
        let (f_lo, f_hi) = if lf == level { (self.lo(f), self.hi(f)) } else { (f, f) };
        let (g_lo, g_hi) = if lg == level { (self.lo(g), self.hi(g)) } else { (g, g) };
        let quantified = self.varsets_lvl[vs.0 as usize].binary_search(&level).is_ok();
        let r = if quantified {
            let lo = self.and_exists_rec(f_lo, g_lo, vs, last);
            if lo == TRUE {
                TRUE // early termination: ∨ with ⊤ is ⊤
            } else {
                let hi = self.and_exists_rec(f_hi, g_hi, vs, last);
                self.or(lo, hi)
            }
        } else {
            let lo = self.and_exists_rec(f_lo, g_lo, vs, last);
            let hi = self.and_exists_rec(f_hi, g_hi, vs, last);
            self.mk(level, lo, hi)
        };
        self.caches.and_exists.insert((a, b, vs.0), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    #[test]
    fn exists_erases_variable() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let vs = m.varset(&[0]);
        // ∃a. a∧b  =  b
        assert_eq!(m.exists(f, vs), b);
    }

    #[test]
    fn forall_requires_both_branches() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let vs = m.varset(&[0]);
        // ∀a. a∨b  =  b
        assert_eq!(m.forall(f, vs), b);
        let g = m.and(a, b);
        // ∀a. a∧b  =  ⊥
        assert_eq!(m.forall(g, vs), FALSE);
    }

    #[test]
    fn exists_empty_set_is_identity() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let vs = m.varset(&[]);
        assert_eq!(m.exists(f, vs), f);
        assert_eq!(m.forall(f, vs), f);
    }

    #[test]
    fn exists_multiple_vars() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.and(ab, c);
        let vs = m.varset(&[0, 2]);
        assert_eq!(m.exists(f, vs), b);
        let all = m.varset(&[0, 1, 2]);
        assert_eq!(m.exists(f, all), TRUE);
        assert_eq!(m.exists(FALSE, all), FALSE);
    }

    #[test]
    fn duality_of_exists_and_forall() {
        // ∀V.f = ¬∃V.¬f on a nontrivial function.
        let mut m = Manager::new(4);
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.xor(a, b);
        let cd = m.and(c, d);
        let f = m.or(ab, cd);
        let vs = m.varset(&[1, 3]);
        let forall = m.forall(f, vs);
        let nf = m.not(f);
        let ex = m.exists(nf, vs);
        let dual = m.not(ex);
        assert_eq!(forall, dual);
    }

    #[test]
    fn and_exists_equals_unfused() {
        let mut m = Manager::new(4);
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.or(a, b);
        let f = m.and(ab, c);
        let bd = m.xor(b, d);
        let g = m.or(bd, a);
        let vs = m.varset(&[1, 2]);
        let fused = m.and_exists(f, g, vs);
        let conj = m.and(f, g);
        let unfused = m.exists(conj, vs);
        assert_eq!(fused, unfused);
    }

    #[test]
    fn and_exists_terminal_cases() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let vs = m.varset(&[0]);
        assert_eq!(m.and_exists(FALSE, a, vs), FALSE);
        assert_eq!(m.and_exists(a, FALSE, vs), FALSE);
        assert_eq!(m.and_exists(TRUE, TRUE, vs), TRUE);
        assert_eq!(m.and_exists(a, a, vs), TRUE); // ∃a. a
    }

    #[test]
    fn relational_product_computes_image() {
        // Two-bit counter: x' = x+1 mod 4 encoded over vars
        // x0 (level 0), x0' (level 1), x1 (level 2), x1' (level 3).
        let mut m = Manager::new(4);
        let x0 = m.var(0);
        let x0n = m.var(1);
        let x1 = m.var(2);
        let x1n = m.var(3);
        // x0' = ¬x0 ; x1' = x1 ⊕ x0
        let t0 = m.xor(x0n, x0); // x0' ≠ x0 ⇔ x0'⊕x0 = 1
        let x1x0 = m.xor(x1, x0);
        let t1 = m.iff(x1n, x1x0);
        let trans = m.and(t0, t1);
        // Image of state {x=0} (x0=0, x1=0).
        let s = m.cube(&[(0, false), (2, false)]);
        let current = m.varset(&[0, 2]);
        let imaged = m.and_exists(s, trans, current);
        // Result is over primed vars: should be exactly x0'=1, x1'=0.
        let expected = m.cube(&[(1, true), (3, false)]);
        assert_eq!(imaged, expected);
    }
}

//! Counting, witness extraction and cube enumeration.

use crate::hash::FxHashMap;
use crate::manager::Manager;
use crate::node::{NodeId, FALSE, TRUE};

impl Manager {
    /// Number of satisfying assignments over all `num_vars()` variables.
    ///
    /// Returned as `f64` because the repair case studies count state spaces
    /// up to ~10^30; values up to 2^1023 are exact enough for reporting and
    /// exactly representable whenever the count is below 2^53.
    pub fn sat_count(&self, f: NodeId) -> f64 {
        self.sat_count_over(f, self.num_vars())
    }

    /// Satisfying assignments counted over an explicit universe of
    /// `universe_vars` variables (levels `0..universe_vars`); `f`'s support
    /// must be contained in that range.
    pub fn sat_count_over(&self, f: NodeId, universe_vars: u32) -> f64 {
        // fraction(f) = |f| / 2^universe; computed bottom-up so each node is
        // visited once regardless of sharing.
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        let frac = self.fraction(f, &mut memo);
        frac * 2f64.powi(universe_vars as i32)
    }

    fn fraction(&self, f: NodeId, memo: &mut FxHashMap<NodeId, f64>) -> f64 {
        match f {
            FALSE => 0.0,
            TRUE => 1.0,
            _ => {
                if let Some(&v) = memo.get(&f) {
                    return v;
                }
                let lo = self.fraction(self.lo(f), memo);
                let hi = self.fraction(self.hi(f), memo);
                let v = (lo + hi) / 2.0;
                memo.insert(f, v);
                v
            }
        }
    }

    /// A deterministic satisfying assignment of `f` restricted to `vars`
    /// (variable indices; missing/don't-care variables default to `false`),
    /// or `None` if `f = ⊥`. Prefers the low branch at every node, so the
    /// witness is deterministic for a given variable order (and the
    /// lexicographically smallest under the identity order).
    pub fn pick_minterm(&self, f: NodeId, vars: &[u32]) -> Option<Vec<bool>> {
        if f == FALSE {
            return None;
        }
        let mut values: FxHashMap<u32, bool> = FxHashMap::default();
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur);
            if self.lo(cur) != FALSE {
                values.insert(v, false);
                cur = self.lo(cur);
            } else {
                values.insert(v, true);
                cur = self.hi(cur);
            }
        }
        debug_assert_eq!(cur, TRUE);
        Some(vars.iter().map(|v| values.get(v).copied().unwrap_or(false)).collect())
    }

    /// The BDD of the single path found by [`Manager::pick_minterm`] over the
    /// given variables — i.e. one fully-specified satisfying cube of `f`
    /// (w.r.t. `vars`), as a BDD. Returns `FALSE` if `f = ⊥`.
    pub fn pick_cube_bdd(&mut self, f: NodeId, vars: &[u32]) -> NodeId {
        match self.pick_minterm(f, vars) {
            None => FALSE,
            Some(values) => {
                let lits: Vec<(u32, bool)> =
                    vars.iter().copied().zip(values.iter().copied()).collect();
                self.cube(&lits)
            }
        }
    }

    /// Iterate over the satisfying *paths* (partial cubes) of `f`. Each item
    /// maps variable index → value for the variables tested on that path;
    /// variables absent from the map are don't-cares.
    pub fn cubes<'a>(&'a self, f: NodeId) -> CubeIter<'a> {
        CubeIter { manager: self, stack: if f == FALSE { vec![] } else { vec![(f, Vec::new())] } }
    }
}

/// Depth-first iterator over the satisfying paths of a BDD
/// (see [`Manager::cubes`]).
pub struct CubeIter<'a> {
    manager: &'a Manager,
    stack: Vec<(NodeId, Vec<(u32, bool)>)>,
}

impl<'a> Iterator for CubeIter<'a> {
    type Item = Vec<(u32, bool)>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((f, path)) = self.stack.pop() {
            match f {
                FALSE => continue,
                TRUE => return Some(path),
                _ => {
                    let v = self.manager.var_of(f);
                    let mut hi_path = path.clone();
                    hi_path.push((v, true));
                    self.stack.push((self.manager.hi(f), hi_path));
                    let mut lo_path = path;
                    lo_path.push((v, false));
                    self.stack.push((self.manager.lo(f), lo_path));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    #[test]
    fn sat_count_basics() {
        let mut m = Manager::new(3);
        assert_eq!(m.sat_count(FALSE), 0.0);
        assert_eq!(m.sat_count(TRUE), 8.0);
        let a = m.var(0);
        assert_eq!(m.sat_count(a), 4.0);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_count(ab), 2.0);
        let aorb = m.or(a, b);
        assert_eq!(m.sat_count(aorb), 6.0);
    }

    #[test]
    fn sat_count_over_smaller_universe() {
        let mut m = Manager::new(8);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        assert_eq!(m.sat_count_over(f, 2), 2.0);
        assert_eq!(m.sat_count(f), 128.0); // 2 * 2^6 don't-cares
    }

    #[test]
    fn sat_count_matches_enumeration() {
        // Random-ish formula, brute-force check.
        let mut m = Manager::new(4);
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let mut count = 0;
        for bits in 0..16u32 {
            let assignment: Vec<bool> = (0..4).map(|i| (bits >> i) & 1 == 1).collect();
            if m.eval(f, &assignment) {
                count += 1;
            }
        }
        assert_eq!(m.sat_count(f), count as f64);
    }

    #[test]
    fn pick_minterm_satisfies() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let nb = m.not(b);
        let anb = m.and(a, nb);
        let f = m.and(anb, c);
        let mt = m.pick_minterm(f, &[0, 1, 2]).unwrap();
        assert_eq!(mt, vec![true, false, true]);
        assert!(m.eval(f, &mt));
        assert_eq!(m.pick_minterm(FALSE, &[0]), None);
    }

    #[test]
    fn pick_minterm_prefers_low_branch() {
        let mut m = Manager::new(2);
        let f = TRUE;
        assert_eq!(m.pick_minterm(f, &[0, 1]).unwrap(), vec![false, false]);
        let a = m.var(0);
        assert_eq!(m.pick_minterm(a, &[0, 1]).unwrap(), vec![true, false]);
    }

    #[test]
    fn pick_cube_bdd_is_single_minterm_inside_f() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.or(a, c);
        let cube = m.pick_cube_bdd(f, &[0, 1, 2]);
        assert_eq!(m.sat_count(cube), 1.0);
        assert!(m.leq(cube, f));
        assert_eq!(m.pick_cube_bdd(FALSE, &[0]), FALSE);
    }

    #[test]
    fn cubes_cover_function_exactly() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        // Rebuild f as the union of its cubes.
        let mut rebuilt = FALSE;
        for cube in m.cubes(f).collect::<Vec<_>>() {
            let cb = m.cube(&cube);
            rebuilt = m.or(rebuilt, cb);
        }
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn cubes_of_constants() {
        let m = Manager::new(2);
        assert_eq!(m.cubes(FALSE).count(), 0);
        let paths: Vec<_> = m.cubes(TRUE).collect();
        assert_eq!(paths, vec![Vec::<(u32, bool)>::new()]);
    }

    #[test]
    fn cubes_are_disjoint_paths() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b);
        let paths: Vec<_> = m.cubes(f).collect();
        let cubes: Vec<_> = paths.iter().map(|c| m.cube(c)).collect();
        for i in 0..cubes.len() {
            for j in i + 1..cubes.len() {
                let (ci, cj) = (cubes[i], cubes[j]);
                assert!(m.disjoint(ci, cj));
            }
        }
    }
}

//! Boolean connectives: `NOT`, `AND`, `OR`, `XOR`, `ITE`, difference and
//! implication, plus the containment test `implies_cheap`.

use crate::manager::Manager;
use crate::node::{NodeId, FALSE, TRUE};

/// Binary operation tags used as cache discriminants.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Op {
    And = 0,
    Or = 1,
    Xor = 2,
}

impl Manager {
    /// `¬f`.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            FALSE => TRUE,
            TRUE => FALSE,
            _ => {
                if let Some(r) = self.caches.not.get(&f) {
                    return r;
                }
                let (level, lo, hi) = (self.level(f), self.lo(f), self.hi(f));
                let nlo = self.not(lo);
                let nhi = self.not(hi);
                let r = self.mk(level, nlo, nhi);
                self.caches.not.insert(f, r);
                // Negation is an involution; caching both directions halves
                // the work of round trips, which the repair fixpoints do a lot.
                self.caches.not.insert(r, f);
                r
            }
        }
    }

    /// `f ∧ g`.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        // Terminal and idempotence short-circuits.
        if f == g {
            return f;
        }
        match (f, g) {
            (FALSE, _) | (_, FALSE) => return FALSE,
            (TRUE, x) | (x, TRUE) => return x,
            _ => {}
        }
        self.apply(Op::And, f, g)
    }

    /// `f ∨ g`.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return f;
        }
        match (f, g) {
            (TRUE, _) | (_, TRUE) => return TRUE,
            (FALSE, x) | (x, FALSE) => return x,
            _ => {}
        }
        self.apply(Op::Or, f, g)
    }

    /// `f ⊕ g`.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        if f == g {
            return FALSE;
        }
        match (f, g) {
            (FALSE, x) | (x, FALSE) => return x,
            (TRUE, x) | (x, TRUE) => return self.not(x),
            _ => {}
        }
        self.apply(Op::Xor, f, g)
    }

    /// `f ∧ ¬g` (set difference when BDDs denote sets).
    pub fn diff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// `f ⇒ g` as a function (`¬f ∨ g`).
    pub fn imp(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let nf = self.not(f);
        self.or(nf, g)
    }

    /// `f ⇔ g` as a function.
    pub fn iff(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let x = self.xor(f, g);
        self.not(x)
    }

    /// Decide `f ⊆ g` (i.e. `f ⇒ g` is a tautology) without building the
    /// implication BDD: `f ∧ ¬g = ⊥`.
    pub fn leq(&mut self, f: NodeId, g: NodeId) -> bool {
        if f == g || f == FALSE || g == TRUE {
            return true;
        }
        self.diff(f, g) == FALSE
    }

    /// Whether `f` and `g` denote disjoint sets.
    pub fn disjoint(&mut self, f: NodeId, g: NodeId) -> bool {
        self.and(f, g) == FALSE
    }

    fn apply(&mut self, op: Op, f: NodeId, g: NodeId) -> NodeId {
        // All three ops are commutative: normalize the cache key.
        let (a, b) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.caches.apply.get(&(op as u8, a, b)) {
            return r;
        }
        let (la, lb) = (self.level(a), self.level(b));
        let level = la.min(lb);
        let (a_lo, a_hi) = if la == level { (self.lo(a), self.hi(a)) } else { (a, a) };
        let (b_lo, b_hi) = if lb == level { (self.lo(b), self.hi(b)) } else { (b, b) };
        let lo = match op {
            Op::And => self.and(a_lo, b_lo),
            Op::Or => self.or(a_lo, b_lo),
            Op::Xor => self.xor(a_lo, b_lo),
        };
        let hi = match op {
            Op::And => self.and(a_hi, b_hi),
            Op::Or => self.or(a_hi, b_hi),
            Op::Xor => self.xor(a_hi, b_hi),
        };
        let r = self.mk(level, lo, hi);
        self.caches.apply.insert((op as u8, a, b), r);
        r
    }

    /// `if f then g else h`.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        match f {
            TRUE => return g,
            FALSE => return h,
            _ => {}
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if g == FALSE && h == TRUE {
            return self.not(f);
        }
        if let Some(r) = self.caches.ite.get(&(f, g, h)) {
            return r;
        }
        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let cof = |m: &Manager, x: NodeId, pos: bool| {
            if m.level(x) == level {
                if pos {
                    m.hi(x)
                } else {
                    m.lo(x)
                }
            } else {
                x
            }
        };
        let (f1, g1, h1) = (cof(self, f, true), cof(self, g, true), cof(self, h, true));
        let (f0, g0, h0) = (cof(self, f, false), cof(self, g, false), cof(self, h, false));
        let hi = self.ite(f1, g1, h1);
        let lo = self.ite(f0, g0, h0);
        let r = self.mk(level, lo, hi);
        self.caches.ite.insert((f, g, h), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    /// Evaluate `f` on every assignment of `n` variables and collect the
    /// truth table as a bitset; the oracle all these tests compare against.
    fn table(m: &Manager, f: NodeId, n: u32) -> u64 {
        assert!(n <= 6);
        let mut t = 0u64;
        for bits in 0..(1u64 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            if m.eval(f, &assignment) {
                t |= 1 << bits;
            }
        }
        t
    }

    #[test]
    fn not_involution() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(2);
        let f = m.and(a, b);
        let nf = m.not(f);
        assert_eq!(m.not(nf), f);
        assert_eq!(table(&m, nf, 3), !table(&m, f, 3) & 0xff);
    }

    #[test]
    fn de_morgan() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let and_ab = m.and(a, b);
        let lhs = m.not(and_ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs); // canonicity: equal functions, equal nodes
    }

    #[test]
    fn xor_via_or_and() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let x1 = m.xor(a, b);
        let or_ab = m.or(a, b);
        let and_ab = m.and(a, b);
        let x2 = m.diff(or_ab, and_ab);
        assert_eq!(x1, x2);
    }

    #[test]
    fn ite_matches_formula() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let via_ite = m.ite(a, b, c);
        let t1 = m.and(a, b);
        let na = m.not(a);
        let t2 = m.and(na, c);
        let via_formula = m.or(t1, t2);
        assert_eq!(via_ite, via_formula);
    }

    #[test]
    fn ite_terminal_shortcuts() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        assert_eq!(m.ite(TRUE, a, b), a);
        assert_eq!(m.ite(FALSE, a, b), b);
        assert_eq!(m.ite(a, b, b), b);
        assert_eq!(m.ite(a, TRUE, FALSE), a);
        let na = m.not(a);
        assert_eq!(m.ite(a, FALSE, TRUE), na);
    }

    #[test]
    fn leq_detects_containment() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.and(a, b);
        let aorb = m.or(a, b);
        assert!(m.leq(ab, a));
        assert!(m.leq(a, aorb));
        assert!(!m.leq(aorb, ab));
        assert!(m.leq(FALSE, ab));
        assert!(m.leq(ab, TRUE));
    }

    #[test]
    fn disjointness() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let na = m.not(a);
        assert!(m.disjoint(a, na));
        let b = m.var(1);
        assert!(!m.disjoint(a, b));
    }

    #[test]
    fn imp_and_iff() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let imp = m.imp(a, b);
        // a⇒b is false only at a=1,b=0, i.e. table index 0b01.
        assert_eq!(table(&m, imp, 2), 0b1101);
        let iff = m.iff(a, b);
        assert_eq!(table(&m, iff, 2), 0b1001);
    }

    #[test]
    fn associativity_and_commutativity_by_canonicity() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let ab_c = m.and(ab, c);
        let bc = m.and(b, c);
        let a_bc = m.and(a, bc);
        assert_eq!(ab_c, a_bc);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn three_variable_truth_table_cross_check() {
        // (a ∨ ¬b) ⊕ c computed two ways.
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let nb = m.not(b);
        let a_or_nb = m.or(a, nb);
        let f = m.xor(a_or_nb, c);
        for bits in 0..8u32 {
            let va = bits & 1 == 1;
            let vb = bits & 2 == 2;
            let vc = bits & 4 == 4;
            assert_eq!(m.eval(f, &[va, vb, vc]), (va || !vb) ^ vc);
        }
    }
}

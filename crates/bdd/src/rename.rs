//! Variable renaming and cofactoring.
//!
//! Renaming is used for the next-state ↔ current-state swap at the heart of
//! image/preimage computation. With the interleaved variable order used by
//! `ftrepair-symbolic` (`x0, x0', x1, x1', …`) the maps are always
//! order-preserving, so renaming is a single linear rebuild.

use crate::manager::Manager;
use crate::node::{NodeId, TRUE};

/// Handle to an interned, order-preserving variable map
/// (see [`Manager::varmap`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarMapId(pub(crate) u32);

impl Manager {
    /// Rename variables of `f` according to the interned map.
    ///
    /// Requires (checked at interning time) that the map preserves the
    /// variable order; target variables must not occur in the support of `f`
    /// unless they are themselves renamed away (checked here in debug builds).
    pub fn rename(&mut self, f: NodeId, map: VarMapId) -> NodeId {
        #[cfg(debug_assertions)]
        {
            let pairs = &self.varmaps[map.0 as usize];
            let sources: crate::hash::FxHashSet<u32> = pairs.iter().map(|p| p.0).collect();
            let targets: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            for v in self.support(f) {
                debug_assert!(
                    !targets.contains(&v) || sources.contains(&v),
                    "rename target {v} already in support"
                );
            }
        }
        self.rename_rec(f, map)
    }

    fn rename_rec(&mut self, f: NodeId, map: VarMapId) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(r) = self.caches.rename.get(&(f, map.0)) {
            return r;
        }
        let level = self.level(f);
        let (lo, hi) = (self.lo(f), self.hi(f));
        let rlo = self.rename_rec(lo, map);
        let rhi = self.rename_rec(hi, map);
        // The level-space view of the map (sorted by source level under the
        // current order) drives the rebuild.
        let pairs = &self.varmaps_lvl[map.0 as usize];
        let new_level = match pairs.binary_search_by_key(&level, |p| p.0) {
            Ok(i) => pairs[i].1,
            Err(_) => level,
        };
        let r = self.mk(new_level, rlo, rhi);
        self.caches.rename.insert((f, map.0), r);
        r
    }

    /// The cofactor of `f` under the partial assignment `literals`
    /// (`(variable, value)` pairs): substitute constants for those variables.
    pub fn restrict(&mut self, f: NodeId, literals: &[(u32, bool)]) -> NodeId {
        // The recursion prunes and searches in level space, so translate the
        // stable variable indices through the current order first.
        let mut lits: Vec<(u32, bool)> =
            literals.iter().map(|&(v, b)| (self.var2level[v as usize], b)).collect();
        lits.sort_unstable_by_key(|p| p.0);
        // Local memo (keyed by node only) is sound because `lits` is fixed
        // for the whole recursion.
        let mut memo = crate::hash::FxHashMap::default();
        self.restrict_rec(f, &lits, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        lits: &[(u32, bool)],
        memo: &mut crate::hash::FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        let level = self.level(f);
        if let Some(&(last, _)) = lits.last() {
            if level > last {
                return f;
            }
        } else {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = (self.lo(f), self.hi(f));
        let r = match lits.binary_search_by_key(&level, |p| p.0) {
            Ok(i) => {
                let child = if lits[i].1 { hi } else { lo };
                self.restrict_rec(child, lits, memo)
            }
            Err(_) => {
                let rlo = self.restrict_rec(lo, lits, memo);
                let rhi = self.restrict_rec(hi, lits, memo);
                self.mk(level, rlo, rhi)
            }
        };
        memo.insert(f, r);
        r
    }

    /// The set of variable indices occurring in `f`, sorted ascending.
    /// Stable across reorders.
    pub fn support(&self, f: NodeId) -> Vec<u32> {
        let mut seen = crate::hash::FxHashSet::default();
        let mut vars = crate::hash::FxHashSet::default();
        let mut stack = vec![f];
        while let Some(g) = stack.pop() {
            if g.is_terminal() || !seen.insert(g) {
                continue;
            }
            vars.insert(self.var_of(g));
            stack.push(self.lo(g));
            stack.push(self.hi(g));
        }
        let mut out: Vec<u32> = vars.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Evaluate `f` under a total assignment (`assignment[variable]`).
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur) as usize;
            cur = if assignment[v] { self.hi(cur) } else { self.lo(cur) };
        }
        cur == TRUE
    }
}

#[cfg(test)]
mod tests {
    use crate::{Manager, FALSE};

    #[test]
    fn rename_shifts_levels() {
        let mut m = Manager::new(4);
        let a = m.var(1);
        let b = m.var(3);
        let f = m.and(a, b);
        // Shift next-vars (odd levels) down to current-vars (even levels).
        let map = m.varmap(&[(1, 0), (3, 2)]);
        let g = m.rename(f, map);
        let a0 = m.var(0);
        let b2 = m.var(2);
        let expected = m.and(a0, b2);
        assert_eq!(g, expected);
    }

    #[test]
    fn rename_identity_map() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        let map = m.varmap(&[]);
        assert_eq!(m.rename(f, map), f);
    }

    #[test]
    fn rename_swap_via_disjoint_targets() {
        // Swapping adjacent pairs 0↔1 is not order-preserving directly, but
        // both directions of the interleaved current/next shift are.
        let mut m = Manager::new(4);
        let f0 = m.var(0);
        let f2 = m.var(2);
        let f = m.or(f0, f2);
        let up = m.varmap(&[(0, 1), (2, 3)]);
        let g = m.rename(f, up);
        let v1 = m.var(1);
        let v3 = m.var(3);
        let expected = m.or(v1, v3);
        assert_eq!(g, expected);
        let down = m.varmap(&[(1, 0), (3, 2)]);
        assert_eq!(m.rename(g, down), f);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = Manager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let bc = m.and(b, c);
        let f = m.or(a, bc);
        assert_eq!(m.restrict(f, &[(0, true)]), crate::TRUE);
        assert_eq!(m.restrict(f, &[(0, false)]), bc);
        assert_eq!(m.restrict(f, &[(0, false), (1, true)]), c);
        assert_eq!(m.restrict(f, &[(0, false), (1, false)]), FALSE);
    }

    #[test]
    fn restrict_irrelevant_var_is_noop() {
        let mut m = Manager::new(3);
        let a = m.var(0);
        let c = m.var(2);
        let f = m.and(a, c);
        assert_eq!(m.restrict(f, &[(1, true)]), f);
        assert_eq!(m.restrict(f, &[]), f);
    }

    #[test]
    fn support_lists_exactly_occurring_vars() {
        let mut m = Manager::new(5);
        let a = m.var(0);
        let d = m.var(3);
        let f = m.xor(a, d);
        assert_eq!(m.support(f), vec![0, 3]);
        assert_eq!(m.support(crate::TRUE), Vec::<u32>::new());
        // A variable that cancels out must not appear.
        let b = m.var(1);
        let ab = m.and(a, b);
        let nb = m.not(b);
        let anb = m.and(a, nb);
        let g = m.or(ab, anb); // = a
        assert_eq!(g, a);
        assert_eq!(m.support(g), vec![0]);
    }

    #[test]
    fn eval_walks_paths() {
        let mut m = Manager::new(2);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.imp(a, b);
        assert!(m.eval(f, &[false, false]));
        assert!(m.eval(f, &[false, true]));
        assert!(!m.eval(f, &[true, false]));
        assert!(m.eval(f, &[true, true]));
    }
}

//! Node identifiers and the in-arena node representation.

/// A handle to a BDD node inside a [`crate::Manager`].
///
/// `NodeId` is a plain 32-bit index: copying it is free and ids remain stable
/// across garbage collections (the arena uses a free-list, never compaction).
/// A `NodeId` is only meaningful together with the manager that created it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// The constant-`false` BDD (terminal node `0`).
pub const FALSE: NodeId = NodeId(0);

/// The constant-`true` BDD (terminal node `1`).
pub const TRUE: NodeId = NodeId(1);

/// Sentinel level (and variable index) for the two terminal nodes; greater
/// than any variable level, so `min(level(f), level(g))` naturally picks the
/// branching variable.
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

impl NodeId {
    /// Whether this is one of the two terminal nodes.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }

    /// Raw index into the arena; exposed for serialization and debugging.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FALSE => write!(f, "⊥"),
            TRUE => write!(f, "⊤"),
            NodeId(i) => write!(f, "n{i}"),
        }
    }
}

/// An internal decision node: `ite(var, hi, lo)`.
///
/// Nodes store the branching **variable index**, not its level: dynamic
/// reordering (see `reorder.rs`) moves variables between levels, and the
/// indirection through `Manager::var2level` is what lets untouched nodes keep
/// their identity across a swap.
///
/// Invariants maintained by [`crate::Manager::mk`]:
/// * `lo != hi` (reduced),
/// * `level(var) < level(lo)` and `level(var) < level(hi)` (ordered under the
///   manager's current variable order),
/// * at most one node per `(var, lo, hi)` triple (hash-consed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: NodeId,
    pub hi: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_are_terminal() {
        assert!(FALSE.is_terminal());
        assert!(TRUE.is_terminal());
        assert!(!NodeId(2).is_terminal());
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{FALSE:?}"), "⊥");
        assert_eq!(format!("{TRUE:?}"), "⊤");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
    }

    #[test]
    fn node_id_is_small() {
        // The arena stores tens of millions of nodes for the larger repair
        // instances; both the handle and the node must stay compact.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }
}

//! A small, fast, non-cryptographic hasher for the unique table and the
//! operation caches.
//!
//! The hot path of every BDD operation is one or two hash-map probes keyed by
//! 32-bit node ids; `SipHash` (std's default) costs more than the rest of the
//! operation combined. This is the well-known `fx` multiply-xor hash used by
//! rustc, implemented locally so the crate stays within the approved
//! dependency set.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc `fx` hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The `fx` hasher: a word-at-a-time multiply-xor mix.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only used for composite keys that fall outside the fixed-width fast
        // paths below; processes 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast `fx` hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast `fx` hash.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        // Not a cryptographic guarantee, but the obvious small keys we use
        // (pairs of node ids) must not collide trivially.
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                let mut h = FxHasher::default();
                h.write_u32(a);
                h.write_u32(b);
                assert!(seen.insert(h.finish()), "collision at ({a},{b})");
            }
        }
    }

    #[test]
    fn write_bytes_matches_padded_words() {
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn hasher_is_deterministic() {
        let run = || {
            let mut h = FxHasher::default();
            h.write_u64(0xdead_beef);
            h.write_u32(42);
            h.finish()
        };
        assert_eq!(run(), run());
    }
}

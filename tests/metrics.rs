//! Workspace-level telemetry integration: repair the token ring with a
//! live [`Telemetry`] handle and check the JSONL run report against the
//! returned [`RepairStats`] — one run, two views, same numbers.

use ftrepair::casestudies::token_ring;
use ftrepair::repair::{build_run_report, lazy_repair_traced, RepairOptions};
use ftrepair::telemetry::{Json, Telemetry};

#[test]
fn token_ring_report_is_valid_jsonl_and_agrees_with_stats() {
    let (mut p, _) = token_ring(3, 3);
    let tele = Telemetry::new();
    let opts = RepairOptions::default();
    let out = lazy_repair_traced(&mut p, &opts, &tele).unwrap();
    assert!(!out.failed);

    let report = build_run_report("token-ring-3x3", "lazy", &opts, &out.stats, false, &tele, &p.cx);
    let line = report.to_json_line();
    assert!(!line.contains('\n'), "one report = one JSONL line");
    let j = Json::parse(&line).unwrap();

    // Identification and schema.
    assert_eq!(j.get("schema_version").unwrap().as_u64(), Some(2));
    assert_eq!(j.get("case").unwrap().as_str(), Some("token-ring-3x3"));
    assert_eq!(j.get("failed").unwrap().as_bool(), Some(false));

    // Phase timings: step1 + step2 = total exactly, and they mirror the
    // durations the RepairStats reports.
    let phases = j.get("phases_s").unwrap();
    let s1 = phases.get("step1").unwrap().as_f64().unwrap();
    let s2 = phases.get("step2").unwrap().as_f64().unwrap();
    let total = phases.get("total").unwrap().as_f64().unwrap();
    assert_eq!(s1 + s2, total);
    assert_eq!(s1, out.stats.step1_time.as_secs_f64());
    assert_eq!(s2, out.stats.step2_time.as_secs_f64());

    // Group counters agree with the returned stats — the registry and the
    // stats struct are incremented side by side, and this pins it.
    let counters = j.get("counters").unwrap();
    let c = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(c("repair.outer_iterations"), out.stats.outer_iterations as u64);
    assert_eq!(c("step2.groups_kept"), out.stats.groups_kept);
    assert_eq!(c("step2.groups_dropped"), out.stats.groups_dropped);
    assert_eq!(c("step2.expansions"), out.stats.expansions);
    assert_eq!(c("step2.picks"), out.stats.step2_picks);

    // Per-iteration BDD size series: one row per outer iteration.
    let iters = j.get("iterations").unwrap().as_arr().unwrap();
    assert_eq!(iters.len(), out.stats.outer_iterations);
    for row in iters {
        assert!(row.get("invariant_nodes").unwrap().as_f64().unwrap() > 0.0);
        assert!(row.get("live_nodes").unwrap().as_f64().unwrap() > 0.0);
    }

    // Cache hit rates for all six op caches plus the unique table.
    let caches = j.get("caches").unwrap().as_obj().unwrap();
    assert_eq!(caches.len(), 7);
    for (name, entry) in caches {
        let rate = entry.get("hit_rate").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&rate), "{name}: {rate}");
    }
}

#[test]
fn telemetry_off_leaves_stats_identical() {
    // The traced entry point with a disabled handle must behave exactly
    // like the plain one: same invariant, same group decisions.
    let (mut a, _) = token_ring(3, 3);
    let on = lazy_repair_traced(&mut a, &RepairOptions::default(), &Telemetry::new()).unwrap();
    let (mut b, _) = token_ring(3, 3);
    let off = lazy_repair_traced(&mut b, &RepairOptions::default(), &Telemetry::off()).unwrap();
    assert_eq!(on.failed, off.failed);
    assert_eq!(on.stats.outer_iterations, off.stats.outer_iterations);
    assert_eq!(on.stats.groups_kept, off.stats.groups_kept);
    assert_eq!(on.stats.groups_dropped, off.stats.groups_dropped);
    assert_eq!(on.stats.step2_picks, off.stats.step2_picks);
}

//! Golden test for `--trace-out`: run the real binary on `token_ring.ftr`,
//! parse the emitted Chrome `trace_event` JSON, and check the span tree —
//! Step 1 / Step 2 and the fixpoint spans must all nest under one job root.

use ftrepair::telemetry::trace::parse_trace_id;
use ftrepair::telemetry::Json;
use std::collections::HashMap;
use std::process::Command;

fn spec(name: &str) -> String {
    format!("{}/examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn trace_out_on_token_ring_nests_phases_under_one_job_root() {
    let dir = std::env::temp_dir().join("ftrepair-trace-export");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("token_ring.trace.json");
    let _ = std::fs::remove_file(&path);

    let out = Command::new(env!("CARGO_BIN_EXE_ftrepair"))
        .args(["repair", &spec("token_ring.ftr"), "--trace-out", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("trace "), "announce line missing: {stderr}");
    assert!(stderr.contains("Perfetto"), "{stderr}");

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let doc = Json::parse(&text).expect("trace file is valid JSON");
    let events = match doc.get("traceEvents").expect("traceEvents key") {
        Json::Arr(v) => v,
        other => panic!("traceEvents not an array: {other:?}"),
    };

    // The process-name metadata event carries the minted 16-hex trace ID,
    // and the same ID appears on the announce line.
    let meta = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .expect("process_name metadata event");
    let pname = meta.get("args").unwrap().get("name").unwrap().as_str().unwrap();
    let hex = pname.split_whitespace().last().unwrap();
    let trace_id = parse_trace_id(hex).unwrap_or_else(|| panic!("bad trace id in {pname:?}"));
    assert_ne!(trace_id, 0);
    assert!(stderr.contains(hex), "stderr does not echo the trace id: {stderr}");

    // Index the complete ("X") span events: span_id -> (name, parent).
    let mut spans: HashMap<u64, (String, u64)> = HashMap::new();
    for e in events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")) {
        let args = e.get("args").expect("span args");
        let id = args.get("span_id").and_then(Json::as_u64).expect("span_id");
        let parent = args.get("parent").and_then(Json::as_u64).unwrap_or(0);
        let name = e.get("name").and_then(Json::as_str).expect("span name").to_string();
        spans.insert(id, (name, parent));
    }

    // Exactly one root: the "job" span, whose parent id resolves to no span.
    let roots: Vec<&u64> =
        spans.iter().filter(|(_, (_, p))| !spans.contains_key(p)).map(|(id, _)| id).collect();
    assert_eq!(roots.len(), 1, "expected one root span, got {spans:?}");
    let root_id = *roots[0];
    assert_eq!(spans[&root_id].0, "job", "{spans:?}");

    // Walk each span's parent chain up to the root; every phase span must be
    // reachable from "job", and step1/step2 must sit under outer_iteration.
    let ancestry = |mut id: u64| -> Vec<String> {
        let mut names = Vec::new();
        while let Some((name, parent)) = spans.get(&id) {
            names.push(name.clone());
            id = *parent;
        }
        names
    };
    let find = |wanted: &str| -> u64 {
        *spans
            .iter()
            .find(|(_, (name, _))| name == wanted)
            .map(|(id, _)| id)
            .unwrap_or_else(|| panic!("span {wanted:?} missing from {spans:?}"))
    };
    for phase in ["step1", "step2"] {
        let chain = ancestry(find(phase));
        assert_eq!(
            chain,
            vec![phase.to_string(), "outer_iteration".to_string(), "job".to_string()],
            "bad nesting for {phase}"
        );
    }
    for fix in ["step1.ms_fixpoint", "step1.reachability", "step1.fixpoint"] {
        let chain = ancestry(find(fix));
        assert!(chain.contains(&"step1".to_string()), "{fix} not under step1: {chain:?}");
        assert_eq!(chain.last().map(String::as_str), Some("job"), "{fix} chain: {chain:?}");
    }

    // The job root carries the case and the trace id as structured fields.
    let job_args = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("job"))
        .and_then(|e| e.get("args"))
        .expect("job span args");
    assert_eq!(job_args.get("case").and_then(Json::as_str), Some("token_ring"));
    assert_eq!(job_args.get("trace_id").and_then(Json::as_str), Some(hex));
}

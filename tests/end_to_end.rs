//! Workspace-level integration tests: the whole pipeline — case-study
//! generators (or the input language) → lazy/cautious repair → independent
//! verification — across crates.

use ftrepair::casestudies::{byzantine_agreement, byzantine_failstop, stabilizing_chain};
use ftrepair::program::DistributedProgram;
use ftrepair::repair::{
    cautious_repair, lazy_repair, verify::verify_outcome, LazyOutcome, RepairOptions,
};

fn check(prog: &mut DistributedProgram, out: &LazyOutcome) {
    assert!(!out.failed, "repair failed for {}", prog.name);
    let (m, r) = verify_outcome(prog, out);
    assert!(m.ok(), "masking verification failed for {}: {m:?}", prog.name);
    assert!(r.ok(), "realizability verification failed for {}: {r:?}", prog.name);
}

#[test]
fn byzantine_agreement_all_option_combinations() {
    for restrict in [true, false] {
        for closed_form in [true, false] {
            for parallel in [true, false] {
                let (mut p, _) = byzantine_agreement(2);
                let opts = RepairOptions {
                    restrict_to_reachable: restrict,
                    step2_closed_form: closed_form,
                    parallel_step2: parallel,
                    ..Default::default()
                };
                let out = lazy_repair(&mut p, &opts).unwrap();
                check(&mut p, &out);
            }
        }
    }
}

#[test]
fn all_case_studies_repair_and_verify() {
    let (mut ba, _) = byzantine_agreement(3);
    let out = lazy_repair(&mut ba, &RepairOptions::default()).unwrap();
    check(&mut ba, &out);

    let (mut fs, _) = byzantine_failstop(2);
    let out = lazy_repair(&mut fs, &RepairOptions::default()).unwrap();
    check(&mut fs, &out);

    let (mut sc, _) = stabilizing_chain(4, 3);
    let out = lazy_repair(&mut sc, &RepairOptions::default()).unwrap();
    check(&mut sc, &out);
}

#[test]
fn cautious_agrees_with_lazy_on_byzantine_invariant() {
    let (mut p, _) = byzantine_agreement(2);
    let lazy = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    let cautious = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!lazy.failed && !cautious.failed);
    assert_eq!(lazy.invariant, cautious.invariant, "the two algorithms' invariants differ");
    // Cautious output also verifies.
    let shaped = LazyOutcome {
        processes: cautious.processes.clone(),
        invariant: cautious.invariant,
        span: cautious.span,
        trans: cautious.trans,
        failed: false,
        stats: cautious.stats.clone(),
    };
    check(&mut p, &shaped);
}

#[test]
fn language_pipeline_repairs() {
    let src = r#"
    program toggles;
    var x : 0..2;
    var y : boolean;
    process px read x; write x;
    begin
      (x = 0) -> x := 1;
      (x = 1) -> x := 0;
    end
    process py read y; write y;
    begin
      (y = 0) -> y := 1;
      (y = 1) -> y := 0;
    end
    fault glitch begin (x = 1) -> x := 2; end
    invariant (x = 0) | (x = 1);
    "#;
    let mut p = ftrepair::lang::load(src).expect("compile");
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    check(&mut p, &out);
    // Recovery synthesized for px.
    let x = p.cx.find_var("x").unwrap();
    let s2 = p.cx.assign_eq(x, 2);
    let rec = p.cx.mgr().and(out.processes[0].trans, s2);
    assert_ne!(rec, ftrepair::bdd::FALSE);
}

#[test]
fn repaired_byzantine_masks_an_actual_attack() {
    // Concrete scenario walk: general turns byzantine and sends different
    // values; the repaired program must never reach a bad state and every
    // fair continuation returns to the invariant. We check the strongest
    // symbolic form: from the whole fault-span, bad states are unreachable
    // and the invariant is always eventually reached (no deadlock, no
    // program cycle outside it) — i.e. exactly the verifier conditions —
    // plus a spot check that the initial undecided state is in the span.
    let (mut p, vars) = byzantine_agreement(2);
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    let init = p.cx.state_cube(&[0, 1, 0, 2, 0, 0, 2, 0]); // ¬b, d.g=1, all ⊥
    assert!(p.cx.mgr().leq(init, out.invariant), "initial state must be legitimate");
    // After the general goes byzantine and flips d.g, we are still in span.
    let byz = p.cx.image(init, p.faults);
    assert!(p.cx.mgr().leq(byz, out.span));
    let _ = vars;
}

#[test]
fn repaired_byzantine_survives_fault_injection() {
    // Belt and braces: beyond the symbolic proof, *run* the repaired
    // program — a thousand random executions with injected byzantine
    // faults must never violate safety and always recover.
    use ftrepair::bdd::SplitMix64;
    use ftrepair::explicit::{extract, simulate, ExplicitProgram, SimConfig};

    let (mut p, _) = byzantine_agreement(2);
    let explicit = ExplicitProgram::from_symbolic(&mut p);
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    let trans = extract::bdd_to_edges(&mut p, &explicit.space, out.trans);
    let inv = extract::bdd_to_states(&mut p, &explicit.space, out.invariant);
    let mut rng = SplitMix64::seed_from_u64(2016);
    let config = SimConfig { runs: 1000, max_faults: 4, ..Default::default() };
    let report = simulate(&explicit, &trans, &inv, &config, &mut rng);
    assert!(report.ok(), "fault injection found a violation: {:?}", report.failure);
    assert!(report.faults_injected > 500, "injection must be exercised");
}

#[test]
fn unrepaired_byzantine_fails_fault_injection() {
    // Control experiment: the *original* program must be caught misbehaving
    // by the same simulator (otherwise the previous test proves nothing).
    use ftrepair::bdd::SplitMix64;
    use ftrepair::explicit::{simulate, ExplicitProgram, SimConfig};

    let (mut p, _) = byzantine_agreement(2);
    let explicit = ExplicitProgram::from_symbolic(&mut p);
    let trans = explicit.program_trans();
    let inv = explicit.invariant.clone();
    let mut rng = SplitMix64::seed_from_u64(2016);
    let config =
        SimConfig { runs: 2000, max_faults: 4, fault_probability: 0.5, ..Default::default() };
    let report = simulate(&explicit, &trans, &inv, &config, &mut rng);
    assert!(!report.ok(), "the fault-intolerant program must fail injection");
}

#[test]
fn step1_is_polynomial_friendly_step2_small_on_chain() {
    // The paper's Table III shape on a mid-size chain: Step 2 is at least
    // an order of magnitude cheaper than Step 1.
    let (mut p, _) = stabilizing_chain(8, 4);
    let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    check(&mut p, &out);
    assert!(
        out.stats.step2_time < out.stats.step1_time,
        "expected step2 ({:?}) < step1 ({:?})",
        out.stats.step2_time,
        out.stats.step1_time
    );
}

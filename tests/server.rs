//! Integration tests for the repair daemon: in-process servers on ephemeral
//! ports exercised through real sockets, plus one binary-level test that
//! drives `ftrepair serve` through a SIGTERM shutdown.

use ftrepair::server::{Server, ServerConfig, ServerHandle};
use ftrepair::telemetry::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn spec(name: &str) -> String {
    let path = format!("{}/examples/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Bind on an ephemeral port and run the server on a background thread.
fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// Raw one-shot HTTP client matching the server's `Connection: close`
/// contract. Returns (status, parsed JSON body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

/// Like [`request`] but with caller-supplied request headers, returning the
/// response headers (lowercased names) and the raw body text — for tests
/// that care about `X-Trace-Id` echo or non-JSON bodies.
fn request_full(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: test\r\n");
    for (name, value) in headers {
        raw.push_str(&format!("{name}: {value}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\nConnection: close\r\n\r\n{body}", body.len()));
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let (head, tail) = text.split_once("\r\n\r\n").unwrap_or((text.as_str(), ""));
    let response_headers = head
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.to_ascii_lowercase(), value.trim().to_string()))
        .collect();
    (status, response_headers, tail.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

#[test]
fn repair_round_trips_both_example_specs() {
    let (addr, handle, join) = start(test_config());

    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");
    let program = body.get("program").and_then(Json::as_str).expect("program text");
    assert!(program.contains("(x = 2) ->"), "recovery missing:\n{program}");

    let (status, body) = request(addr, "POST", "/repair", &spec("tmr_voter.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    let program = body.get("program").and_then(Json::as_str).expect("program text");
    assert!(
        program.contains("(r0 = 0) & (r1 = 0) & (r2 = 0) & (o = 2) -> o := 0;"),
        "unanimity decision missing:\n{program}"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn identical_posts_hit_the_cache_and_metrics_show_it() {
    let (addr, handle, join) = start(test_config());
    let toggle = spec("toggle_pair.ftr");

    let (status, first) = request(addr, "POST", "/repair", &toggle);
    assert_eq!(status, 200, "{first}");
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));

    // Different formatting (extra comment + indentation), same canonical
    // spec: still a cache hit.
    let reformatted = format!("// resubmitted\n{}", toggle.replace('\n', "\n  "));
    let (status, second) = request(addr, "POST", "/repair", &reformatted);
    assert_eq!(status, 200, "{second}");
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true), "{second}");
    assert_eq!(first.get("key"), second.get("key"), "same content address");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counters = metrics.get("counters").expect("counters object");
    assert!(counters.get("server.cache.hits").and_then(Json::as_u64) >= Some(1), "{metrics}");
    assert!(counters.get("server.cache.misses").and_then(Json::as_u64) >= Some(1), "{metrics}");
    assert!(counters.get("server.jobs.completed").and_then(Json::as_u64) >= Some(1), "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_specs_get_400_and_the_server_stays_up() {
    let (addr, handle, join) = start(test_config());

    let (status, body) = request(addr, "POST", "/repair", "program broken (((");
    assert_eq!(status, 400, "{body}");
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(false));
    let error = body.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("parse error"), "{body}");

    let (status, body) = request(addr, "POST", "/repair", "");
    assert_eq!(status, 400, "{body}");

    // Semantically broken (unknown variable) is a compile error, also 400.
    let (status, body) = request(
        addr,
        "POST",
        "/repair",
        "program t; process p read x; write x; begin (x = 0) -> x := 1; end invariant true;",
    );
    assert_eq!(status, 400, "{body}");
    assert!(
        body.get("error").and_then(Json::as_str).unwrap_or("").contains("compile error"),
        "{body}"
    );

    // The workers survived all of it.
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn unknown_paths_and_methods_are_clean_errors() {
    let (addr, handle, join) = start(test_config());
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/repair", "");
    assert_eq!(status, 405);
    let (status, body) = request(addr, "POST", "/repair?mode=psychic", &spec("toggle_pair.ftr"));
    assert_eq!(status, 400);
    assert!(
        body.get("error").and_then(Json::as_str).unwrap_or("").contains("unknown mode"),
        "{body}"
    );
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn simulate_replays_faults_against_the_cached_repair() {
    let (addr, handle, join) = start(test_config());
    let toggle = spec("toggle_pair.ftr");

    let (status, body) = request(addr, "POST", "/simulate?runs=50&seed=7", &toggle);
    assert_eq!(status, 200, "{body}");
    let sim = body.get("simulation").expect("simulation object");
    assert_eq!(sim.get("ok").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(sim.get("runs").and_then(Json::as_u64), Some(50), "{body}");
    assert!(sim.get("faults_injected").and_then(Json::as_u64) > Some(0), "{body}");

    // The simulate call warmed the cache; a /repair on the same spec hits.
    let (status, body) = request(addr, "POST", "/repair", &toggle);
    assert_eq!(status, 200);
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");

    let (status, body) = request(addr, "POST", "/simulate?runs=0", &toggle);
    assert_eq!(status, 400, "{body}");

    let (status, body) = request(addr, "POST", "/simulate?max-faults=1000000", &toggle);
    assert_eq!(status, 400, "{body}");
    assert!(
        body.get("error").and_then(Json::as_str).unwrap_or("").contains("max-faults"),
        "{body}"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn full_queue_sheds_load_with_429() {
    let config = ServerConfig { workers: 1, queue_cap: 1, ..test_config() };
    let (addr, handle, join) = start(config);

    // Occupy the single worker, then the single queue slot, with idle
    // connections that never send a request.
    let idle1 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker pops idle1
    let idle2 = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200)); // idle2 sits in the queue

    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 429, "{body}");
    assert!(body.get("error").and_then(Json::as_str).unwrap_or("").contains("busy"), "{body}");

    // Freeing the connections restores service.
    drop(idle1);
    drop(idle2);
    std::thread::sleep(Duration::from_millis(200));
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn thirty_two_concurrent_posts_all_succeed() {
    let (addr, handle, join) = start(test_config());
    let toggle = spec("toggle_pair.ftr");
    let tmr = spec("tmr_voter.ftr");

    let results: Vec<(u16, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let body = if i % 2 == 0 { &toggle } else { &tmr };
                scope.spawn(move || request(addr, "POST", "/repair", body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (status, body) in &results {
        assert_eq!(*status, 200, "{body}");
        assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    }
    // With 32 requests over 2 distinct specs, single-flight guarantees the
    // repair runs once per spec: every other request either waits for the
    // leader and reads the cache, or arrives later and hits directly.
    let hits = results
        .iter()
        .filter(|(_, b)| b.get("cached").and_then(Json::as_bool) == Some(true))
        .count();
    assert_eq!(hits, 30, "exactly one miss per distinct spec");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn exhausted_job_timeout_answers_503_and_is_never_cached() {
    let config = ServerConfig { job_timeout: Duration::ZERO, ..test_config() };
    let (addr, handle, join) = start(config);
    let toggle = spec("toggle_pair.ftr");

    let (status, body) = request(addr, "POST", "/repair", &toggle);
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("timeout"), "{body}");

    // The failure was not cached: the same spec times out again instead of
    // serving a pinned 503 (a retry may run under a larger budget).
    let (status, body) = request(addr, "POST", "/repair", &toggle);
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("timeout"), "{body}");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(counters.get("server.jobs.timed_out").and_then(Json::as_u64), Some(2), "{metrics}");
    assert_eq!(metrics.get("cache_entries").and_then(Json::as_u64), Some(0), "{metrics}");

    // Timeouts are transient conditions, not worker faults: still healthy.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"), "{health}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn cancel_jobs_aborts_repairs_with_503_cancelled() {
    let (addr, handle, join) = start(test_config());
    handle.cancel_jobs();

    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("cancelled"), "{body}");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(counters.get("server.jobs.cancelled").and_then(Json::as_u64), Some(1), "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn metrics_out_gets_per_job_reports_and_a_shutdown_summary() {
    let dir = std::env::temp_dir().join("ftrepair-server-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("server.jsonl");
    let _ = std::fs::remove_file(&path);

    let config = ServerConfig { metrics_out: Some(path.clone()), ..test_config() };
    let (addr, handle, join) = start(config);
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    handle.shutdown();
    join.join().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).expect("JSONL line")).collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert_eq!(lines[0].get("case").and_then(Json::as_str), Some("toggle_pair"));
    assert!(lines[0].get("server_key").is_some(), "job line carries the content address");
    assert_eq!(lines[1].get("case").and_then(Json::as_str), Some("server"));
    assert_eq!(lines[1].get("mode").and_then(Json::as_str), Some("summary"));
}

#[test]
fn trace_ids_round_trip_and_jobs_expose_records() {
    let (addr, handle, join) = start(test_config());
    let toggle = spec("toggle_pair.ftr");

    // A well-formed X-Trace-Id header is adopted: echoed in the response
    // header and body, and used as the /jobs key.
    let hex = "00000000deadbeef";
    let (status, headers, body) =
        request_full(addr, "POST", "/repair", &[("X-Trace-Id", hex)], &toggle);
    assert_eq!(status, 200, "{body}");
    assert_eq!(header(&headers, "x-trace-id"), Some(hex), "{headers:?}");
    let body = Json::parse(&body).expect("JSON body");
    assert_eq!(body.get("trace_id").and_then(Json::as_str), Some(hex), "{body}");

    let (status, record) = request(addr, "GET", &format!("/jobs/{hex}"), "");
    assert_eq!(status, 200, "{record}");
    assert_eq!(record.get("ok").and_then(Json::as_bool), Some(true), "{record}");
    assert_eq!(record.get("trace_id").and_then(Json::as_str), Some(hex));
    assert_eq!(record.get("case").and_then(Json::as_str), Some("toggle_pair"));
    assert_eq!(record.get("status").and_then(Json::as_str), Some("done"), "{record}");
    let detail = record.get("detail").expect("detail object");
    assert!(detail.get("outer_iterations").and_then(Json::as_u64) >= Some(1), "{record}");
    assert_eq!(detail.get("verified").and_then(Json::as_bool), Some(true), "{record}");

    // A resubmission is a cache hit under its own server-minted ID; /jobs
    // lists both records newest-first.
    let (status, body) = request(addr, "POST", "/repair", &toggle);
    assert_eq!(status, 200, "{body}");
    let minted = body.get("trace_id").and_then(Json::as_str).expect("minted id").to_string();
    assert_ne!(minted, hex, "server must mint when no header is sent");
    let (status, listing) = request(addr, "GET", "/jobs", "");
    assert_eq!(status, 200, "{listing}");
    let jobs = match listing.get("jobs").expect("jobs array") {
        Json::Arr(v) => v,
        other => panic!("jobs not an array: {other:?}"),
    };
    assert_eq!(jobs.len(), 2, "{listing}");
    assert_eq!(jobs[0].get("trace_id").and_then(Json::as_str), Some(minted.as_str()));
    assert_eq!(jobs[0].get("status").and_then(Json::as_str), Some("cache_hit"), "{listing}");
    assert_eq!(jobs[1].get("trace_id").and_then(Json::as_str), Some(hex));

    // Unknown and malformed IDs are clean errors, not 500s.
    let (status, _) = request(addr, "GET", "/jobs/0000000000000001", "");
    assert_eq!(status, 404);
    let (status, _) = request(addr, "GET", "/jobs/not-a-trace-id", "");
    assert_eq!(status, 400);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn prometheus_exposition_lints_clean_and_metrics_json_is_v2() {
    let (addr, handle, join) = start(test_config());
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);

    let (status, headers, text) = request_full(addr, "GET", "/metrics?format=prometheus", &[], "");
    assert_eq!(status, 200, "{text}");
    assert!(
        header(&headers, "content-type").unwrap_or("").contains("version=0.0.4"),
        "{headers:?}"
    );
    let violations = ftrepair::telemetry::prometheus::lint(&text);
    assert!(violations.is_empty(), "lint violations {violations:?} in:\n{text}");
    assert!(text.contains("# TYPE ftr_server_request_seconds histogram"), "{text}");
    assert!(text.contains("ftr_server_request_seconds_bucket{le=\"+Inf\"}"), "{text}");
    assert!(text.contains("ftr_server_cache_misses_total"), "{text}");
    assert!(text.contains("ftr_server_uptime_seconds"), "{text}");

    let (status, _, body) = request_full(addr, "GET", "/metrics?format=csv", &[], "");
    assert_eq!(status, 400, "unknown formats must be rejected: {body}");

    // The JSON shape: schema v2 with first-class histogram objects, built
    // from a direct registry snapshot (no synthetic RunReport).
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metrics.get("schema_version").and_then(Json::as_u64), Some(2), "{metrics}");
    let hists = metrics.get("histograms").expect("histograms object");
    let req = hists.get("server.request.seconds").expect("request latency histogram");
    assert!(req.get("count").and_then(Json::as_u64) >= Some(1), "{metrics}");
    assert!(hists.get("server.queue_wait.seconds").is_some(), "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

/// Binary-level: `ftrepair serve` announces its address, serves traffic,
/// and drains cleanly on SIGTERM.
#[test]
#[cfg(unix)]
fn serve_binary_shuts_down_gracefully_on_sigterm() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_ftrepair"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ftrepair serve");

    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let announce = lines.next().expect("announce line").expect("read stdout");
    let addr: SocketAddr = announce
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .parse()
        .expect("parse announced address");

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    // wait() has no timeout in std; poll with a deadline instead.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "server exited with {status}");
                break;
            }
            None if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                panic!("server did not exit within 30s of SIGTERM");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    let mut stderr = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr).unwrap();
    assert!(stderr.contains("drained and stopped"), "{stderr}");
}

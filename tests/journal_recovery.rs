//! Binary-level crash recovery: `ftrepair serve --journal` is killed with
//! SIGKILL mid-repair and restarted on the same volume. The second boot
//! must find the orphaned journal record, replay it to completion in the
//! background, and serve the same spec from cache — the client never
//! re-pays the repair it already submitted.
//!
//! This is the real-process counterpart of the in-process recovery tests
//! in `crates/server/tests/journal_recovery.rs` (where the cancel flag
//! stands in for the kill): here nothing stands in — the process dies with
//! `kill -9`, with no destructors, no drain, and no flush beyond what the
//! journal's write discipline already guaranteed.

#![cfg(unix)]

use ftrepair::telemetry::Json;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn slow_spec() -> String {
    let path = format!("{}/examples/specs/stabilizing_chain10.ftr", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftrepair-kill9-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn `ftrepair serve` journaled and store-backed on `dir`, and parse
/// the announced ephemeral address off its first stdout line.
fn spawn_serve(dir: &Path) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ftrepair"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .arg("--journal")
        .arg(dir.join("journal.jsonl"))
        .arg("--store-dir")
        .arg(dir.join("store"))
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ftrepair serve");
    let stdout = child.stdout.take().unwrap();
    let announce = BufReader::new(stdout).lines().next().expect("announce line").expect("stdout");
    let addr = announce
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {announce:?}"))
        .parse()
        .expect("parse announced address");
    (child, addr)
}

/// One-shot HTTP exchange that reports I/O failure instead of panicking —
/// the mid-repair POST's connection dies with the killed server, and that
/// is expected.
fn try_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<(u16, Json)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes())?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply)?;
    let text = String::from_utf8(reply).map_err(|e| io::Error::other(e.to_string()))?;
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| io::Error::other(format!("malformed status: {:?}", text.lines().next())))?;
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = Json::parse(json_body).map_err(|e| io::Error::other(e.to_string()))?;
    Ok((status, json))
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    try_request(addr, method, path, body).expect("request against a live server")
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Poll `/metrics` until `name` reaches `want` — recovery and replay run
/// on a background thread, and the replayed repair itself takes seconds in
/// a debug build.
fn wait_counter(addr: SocketAddr, name: &str, want: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut last = Json::Null;
    while Instant::now() < deadline {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        if counter(&metrics, name) >= want {
            return metrics;
        }
        last = metrics;
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("counter {name} never reached {want}: {last}");
}

/// Poll the child with a deadline — `wait()` has no timeout in std.
fn wait_exit(child: &mut Child, what: &str) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => return status,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("server did not exit within 30s of {what}");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn kill_nine_mid_repair_is_recovered_by_the_next_boot() {
    let dir = temp_dir("recover");
    let spec = slow_spec();

    // Boot 1: submit the slow spec and wait until its job is actually
    // running (journal start record on disk, repair in flight).
    let (mut child, addr) = spawn_serve(&dir);
    let poster = {
        let spec = spec.clone();
        std::thread::spawn(move || {
            // The connection dies with the process; any outcome is fine.
            let _ = try_request(addr, "POST", "/repair", &spec);
        })
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, body) = request(addr, "GET", "/jobs", "");
        let running = body.get("jobs").and_then(Json::as_arr).is_some_and(|jobs| {
            jobs.iter().any(|j| j.get("status").and_then(Json::as_str) == Some("running"))
        });
        if running {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running: {body}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // kill -9: no drain, no destructors, no goodbye.
    let kill =
        Command::new("kill").args(["-9", &child.id().to_string()]).status().expect("send SIGKILL");
    assert!(kill.success());
    let status = wait_exit(&mut child, "SIGKILL");
    assert!(!status.success(), "SIGKILL cannot look like a clean exit");
    poster.join().unwrap();

    // Boot 2 on the same volume: the scan finds the orphaned record and
    // the healthz recovery section narrates it.
    let (mut child, addr) = spawn_serve(&dir);
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    let recovery = health.get("recovery").expect("recovery section");
    assert_eq!(recovery.get("journal").and_then(Json::as_bool), Some(true), "{health}");
    assert_eq!(recovery.get("pending_at_boot").and_then(Json::as_u64), Some(1), "{health}");

    // The record is recovered, replayed to completion, and persisted.
    let metrics = wait_counter(addr, "server.jobs.recovered", 1);
    assert_eq!(counter(&metrics, "server.jobs.recovered"), 1, "{metrics}");
    wait_counter(addr, "server.jobs.replayed", 1);
    wait_counter(addr, "store.writes", 1);

    // The client's retry is served from cache — no recompute.
    let (status, body) = request(addr, "POST", "/repair", &spec);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");

    // This boot dies politely, and a third one has nothing left to do.
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    assert!(wait_exit(&mut child, "SIGTERM").success());

    let (mut child, addr) = spawn_serve(&dir);
    let (_, health) = request(addr, "GET", "/healthz", "");
    let recovery = health.get("recovery").expect("recovery section");
    assert_eq!(recovery.get("pending_at_boot").and_then(Json::as_u64), Some(0), "{health}");
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    assert!(wait_exit(&mut child, "SIGTERM").success());
    let _ = std::fs::remove_dir_all(&dir);
}

//! Integration tests for the persistent result store: repairs must survive
//! a daemon restart (served from disk, not recomputed), near-key neighbors
//! must warm-start edited specs, and a corrupted store must degrade to
//! clean recomputation — never crash, never serve poison.

use ftrepair::server::{Server, ServerConfig, ServerHandle};
use ftrepair::telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn spec(name: &str) -> String {
    let path = format!("{}/examples/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// `toggle_pair` with one extra (harmless) action in `py`: same variables
/// and faults, fingerprint distance 1 — a warm-start near-neighbor of the
/// original, but a different content key.
fn edited_spec() -> String {
    let base = spec("toggle_pair.ftr");
    let edited = base.replace("  (y = 1) -> y := 0;", "  (y = 1) -> y := 0;\n  (y = 1) -> y := 1;");
    assert_ne!(base, edited, "edit must apply");
    edited
}

/// A unique, self-cleaning store directory per test.
struct TempStore(PathBuf);

impl TempStore {
    fn new(tag: &str) -> TempStore {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ftrepair-store-it-{tag}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed),
        ));
        TempStore(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        store_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Block until the async writer has persisted `n` entries (the write-through
/// is deliberately off the response path, so tests must wait for it).
fn wait_for_writes(addr: SocketAddr, n: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, metrics) = request(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        if counter(&metrics, "store.writes") >= n {
            return metrics;
        }
        assert!(Instant::now() < deadline, "store writer never persisted {n} entries: {metrics}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The entry directory for the single stored key under `dir`.
fn only_entry_dir(dir: &Path) -> PathBuf {
    let entries: Vec<PathBuf> = std::fs::read_dir(dir.join("entries"))
        .expect("entries dir")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one stored entry: {entries:?}");
    entries.into_iter().next().unwrap()
}

#[test]
fn restart_serves_repairs_from_disk_without_recomputation() {
    let store = TempStore::new("restart");

    // First incarnation: repair, then wait for the write-through.
    let (addr, handle, join) = start(store_config(store.path()));
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    let metrics = wait_for_writes(addr, 1);
    assert_eq!(counter(&metrics, "server.jobs.completed"), 1, "{metrics}");
    handle.shutdown();
    join.join().unwrap();

    // Second incarnation on the same directory: the repair must come off
    // disk — a store hit, a promotion, and zero completed jobs.
    let (addr, handle, join) = start(store_config(store.path()));
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    let program = body.get("program").and_then(Json::as_str).expect("program text");
    assert!(program.contains("(x = 2) ->"), "stored program lost its recovery:\n{program}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(counter(&metrics, "store.hits") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "store.promotions"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "server.jobs.completed"), 0, "{metrics}");

    // The promoted entry must be fully functional: /simulate rebuilds its
    // explicit bundle from the stored artifacts.
    let (status, sim) = request(addr, "POST", "/simulate?runs=50", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{sim}");
    assert_eq!(
        sim.get("simulation").and_then(|s| s.get("ok")).and_then(Json::as_bool),
        Some(true),
        "{sim}"
    );

    // /healthz reports the store tier.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let store_health = health.get("store").expect("store section");
    assert_eq!(store_health.get("enabled").and_then(Json::as_bool), Some(true), "{health}");
    assert!(store_health.get("entries").and_then(Json::as_u64).unwrap_or(0) >= 1, "{health}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn edited_spec_warm_starts_from_stored_neighbor() {
    let store = TempStore::new("warm");

    // Persist the original spec's repair.
    let (addr, handle, join) = start(store_config(store.path()));
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    wait_for_writes(addr, 1);
    handle.shutdown();
    join.join().unwrap();

    // Resubmit a one-action edit after a restart: different content key
    // (so no exact hit), but the stored neighbor donates warm seeds — and
    // the result must still verify against the independent checkers.
    let (addr, handle, join) = start(store_config(store.path()));
    let (status, body) = request(addr, "POST", "/repair", &edited_spec());
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");
    assert_eq!(body.get("warm_start").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("warm_distance").and_then(Json::as_u64), Some(1), "{body}");
    let neighbor = body.get("warm_neighbor").and_then(Json::as_str).expect("neighbor key");
    assert_eq!(neighbor.len(), 64, "neighbor is a content key");
    let program = body.get("program").and_then(Json::as_str).expect("program text");
    assert!(program.contains("(x = 2) ->"), "warm repair lost its recovery:\n{program}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(counter(&metrics, "repair.warm_starts") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "server.jobs.warm_started"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "repair.warm_verify_failures"), 0, "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn warm_start_can_be_disabled() {
    let store = TempStore::new("nowarm");

    let (addr, handle, join) = start(store_config(store.path()));
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    wait_for_writes(addr, 1);
    handle.shutdown();
    join.join().unwrap();

    let config = ServerConfig { warm_start: false, ..store_config(store.path()) };
    let (addr, handle, join) = start(config);
    let (status, body) = request(addr, "POST", "/repair", &edited_spec());
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("warm_start").and_then(Json::as_bool), Some(false), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn truncated_manifest_is_quarantined_and_recomputed() {
    let store = TempStore::new("truncmanifest");

    let (addr, handle, join) = start(store_config(store.path()));
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    wait_for_writes(addr, 1);
    handle.shutdown();
    join.join().unwrap();

    // Torn write: the manifest loses its tail.
    let manifest = only_entry_dir(store.path()).join("manifest.json");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() / 2]).unwrap();

    // The restarted daemon must detect it at open, quarantine the entry,
    // and serve the resubmission by recomputing — never crash, never serve
    // a half-read result.
    let (addr, handle, join) = start(store_config(store.path()));
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(counter(&metrics, "store.corrupt") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "store.hits"), 0, "{metrics}");
    assert_eq!(counter(&metrics, "server.jobs.completed"), 1, "{metrics}");
    assert!(
        store.path().join("quarantine").read_dir().unwrap().next().is_some(),
        "corrupt entry should be moved to quarantine/"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn flipped_artifact_byte_reads_as_miss_and_recomputes() {
    let store = TempStore::new("bitflip");

    let (addr, handle, join) = start(store_config(store.path()));
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    wait_for_writes(addr, 1);
    handle.shutdown();
    join.join().unwrap();

    // Silent corruption: one flipped bit in the artifact container. The
    // manifest still parses, so the entry survives the open scan — the
    // checksum check at read time must catch it.
    let artifacts = only_entry_dir(store.path()).join("artifacts.bin");
    let mut bytes = std::fs::read(&artifacts).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&artifacts, &bytes).unwrap();

    let (addr, handle, join) = start(store_config(store.path()));
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(counter(&metrics, "store.corrupt") >= 1, "{metrics}");
    assert_eq!(counter(&metrics, "store.hits"), 0, "no poison served: {metrics}");
    assert_eq!(counter(&metrics, "server.jobs.completed"), 1, "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn stray_tmp_file_is_swept_not_counted_as_corruption() {
    let store = TempStore::new("tmpsweep");

    let (addr, handle, join) = start(store_config(store.path()));
    let (status, _) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200);
    wait_for_writes(addr, 1);
    handle.shutdown();
    join.join().unwrap();

    // A writer that died mid-stage leaves debris under tmp/ — the next
    // open sweeps it silently; it is not a corrupt *entry*.
    let stray = store.path().join("tmp").join("deadbeef.1234.partial");
    std::fs::write(&stray, b"half-written stage directory debris").unwrap();

    let (addr, handle, join) = start(store_config(store.path()));
    assert!(!stray.exists(), "tmp debris should be swept at open");
    let (status, body) = request(addr, "POST", "/repair", &spec("toggle_pair.ftr"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "store.corrupt"), 0, "{metrics}");
    assert!(counter(&metrics, "store.hits") >= 1, "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

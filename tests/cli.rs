//! Integration tests for the `ftrepair` command-line tool, driven through
//! the real binary on the shipped `.ftr` spec files.

use std::process::Command;

fn ftrepair(args: &[&str]) -> (String, String, bool) {
    let (stdout, stderr, code) = ftrepair_code(args);
    (stdout, stderr, code == Some(0))
}

/// Like [`ftrepair`] but reporting the raw exit code — for the tests that
/// pin the exit-code contract rather than just success/failure.
fn ftrepair_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_ftrepair")).args(args).output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn spec(name: &str) -> String {
    format!("{}/examples/specs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn info_reports_model_shape() {
    let (stdout, _, ok) = ftrepair(&["info", &spec("toggle_pair.ftr")]);
    assert!(ok);
    assert!(stdout.contains("program toggle_pair"));
    assert!(stdout.contains("x : 0..2"));
    assert!(stdout.contains("state space: 6 states"));
    assert!(stdout.contains("invariant:   4 states"));
}

#[test]
fn check_passes_on_well_formed_spec() {
    let (stdout, _, ok) = ftrepair(&["check", &spec("toggle_pair.ftr")]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("check passed"));
    assert!(stdout.contains("realizable: true"));
}

#[test]
fn repair_toggle_pair_produces_recovery() {
    let (stdout, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr")]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified: masking=true realizability=true"));
    assert!(stdout.contains("(x = 2) ->"), "recovery missing:\n{stdout}");
}

#[test]
fn repair_tmr_synthesizes_safe_voter() {
    let (stdout, stderr, ok) = ftrepair(&["repair", &spec("tmr_voter.ftr")]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified: masking=true realizability=true"));
    // Unanimity decisions survive.
    assert!(stdout.contains("(r0 = 0) & (r1 = 0) & (r2 = 0) & (o = 2) -> o := 0;"), "{stdout}");
    // The naive copy-whatever-r0-says behavior is gone: no command decides
    // 1 from an all-zeros context or vice versa.
    assert!(!stdout.contains("(r0 = 1) & (r1 = 0) & (r2 = 0) & (o = 2) -> o := 1;"), "{stdout}");
}

#[test]
fn repair_with_cautious_flag_matches_lazy_verdict() {
    let (_, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--cautious"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified: masking=true realizability=true"));
}

#[test]
fn repair_with_parallel_and_iterative_flags() {
    for flag in ["--parallel", "--iterative-step2", "--pure-lazy"] {
        let (_, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), flag]);
        assert!(ok, "{flag}: {stderr}");
        assert!(stderr.contains("masking=true"), "{flag}: {stderr}");
    }
}

#[test]
fn repair_token_ring_ships_and_verifies() {
    let (stdout, stderr, ok) = ftrepair(&["repair", &spec("token_ring.ftr")]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verified: masking=true realizability=true"));
    // The rotation inside the invariant survives in the output.
    assert!(stdout.contains("process p0"), "{stdout}");
}

#[test]
fn repair_with_metrics_out_appends_jsonl() {
    let dir = std::env::temp_dir().join("ftrepair-cli-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");
    let _ = std::fs::remove_file(&path);
    let path_str = path.to_str().unwrap();

    let (_, stderr, ok) = ftrepair(&["repair", &spec("token_ring.ftr"), "--metrics-out", path_str]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("metrics appended to"), "{stderr}");
    // A second run appends rather than truncates.
    let (_, _, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--metrics-out", path_str]);
    assert!(ok);

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    let first = ftrepair::telemetry::Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("case").unwrap().as_str(), Some("token_ring"));
    assert_eq!(first.get("mode").unwrap().as_str(), Some("lazy"));
    assert_eq!(first.get("verified").unwrap().as_bool(), Some(true));
    let second = ftrepair::telemetry::Json::parse(lines[1]).unwrap();
    assert_eq!(second.get("case").unwrap().as_str(), Some("toggle_pair"));
}

#[test]
fn repair_with_trace_streams_spans_to_stderr() {
    let (_, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--trace"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("trace: > job"), "{stderr}");
    assert!(stderr.contains("> outer_iteration"), "{stderr}");
    assert!(stderr.contains("< step1"), "{stderr}");
    assert!(stderr.contains("< step2"), "{stderr}");
}

#[test]
fn simulate_replays_faults_against_the_repair() {
    let (stdout, stderr, ok) = ftrepair(&["simulate", &spec("toggle_pair.ftr"), "--runs", "50"]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("repaired toggle_pair (lazy mode), verified: true"), "{stderr}");
    assert!(stderr.contains("simulation ok: 50 runs"), "{stderr}");
    let report = ftrepair::telemetry::Json::parse(stdout.trim()).unwrap();
    assert_eq!(report.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(report.get("runs").unwrap().as_u64(), Some(50));
    assert!(report.get("faults_injected").unwrap().as_u64() > Some(0));
}

#[test]
fn simulate_is_seed_deterministic() {
    let (a, _, ok_a) = ftrepair(&["simulate", &spec("toggle_pair.ftr"), "--seed", "42"]);
    let (b, _, ok_b) = ftrepair(&["simulate", &spec("toggle_pair.ftr"), "--seed", "42"]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b, "same seed must replay the same batch");
}

#[test]
fn simulate_rejects_malformed_specs_cleanly() {
    let dir = std::env::temp_dir().join("ftrepair-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad-sim.ftr");
    std::fs::write(&bad, "program broken (((").unwrap();
    let (_, stderr, ok) = ftrepair(&["simulate", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn metrics_out_without_a_path_is_rejected() {
    let (_, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--metrics-out"]);
    assert!(!ok);
    assert!(stderr.contains("--metrics-out requires a path"), "{stderr}");
}

#[test]
fn missing_file_is_a_clean_error() {
    let (_, stderr, ok) = ftrepair(&["repair", "no-such-file.ftr"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
}

#[test]
fn parse_errors_are_reported_with_position() {
    let dir = std::env::temp_dir().join("ftrepair-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ftr");
    std::fs::write(&bad, "program broken").unwrap();
    let (_, stderr, ok) = ftrepair(&["check", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn unknown_command_is_rejected() {
    let (_, stderr, ok) = ftrepair(&["frobnicate", &spec("toggle_pair.ftr")]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn metrics_dump_renders_prometheus_that_passes_prom_lint() {
    let dir = std::env::temp_dir().join("ftrepair-cli-promdump");
    std::fs::create_dir_all(&dir).unwrap();
    let runs = dir.join("runs.jsonl");
    let _ = std::fs::remove_file(&runs);
    let runs_str = runs.to_str().unwrap();

    let (_, _, ok) = ftrepair(&["repair", &spec("token_ring.ftr"), "--metrics-out", runs_str]);
    assert!(ok);
    let (_, _, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--metrics-out", runs_str]);
    assert!(ok);

    let (exposition, stderr, ok) = ftrepair(&["metrics-dump", runs_str]);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("merged 2 report line(s)"), "{stderr}");
    assert!(exposition.contains("# TYPE ftr_repair_step1_seconds histogram"), "{exposition}");
    assert!(exposition.contains("ftr_repair_step1_seconds_bucket{le=\"+Inf\"} 2"), "{exposition}");
    let violations = ftrepair::telemetry::prometheus::lint(&exposition);
    assert!(violations.is_empty(), "{violations:?}\n{exposition}");

    // The same text satisfies the in-tree linter subcommand (file and stdin
    // are both accepted; CI pipes the live /metrics scrape through `-`).
    let exposition_path = dir.join("exposition.txt");
    std::fs::write(&exposition_path, &exposition).unwrap();
    let (_, lint_stderr, ok) = ftrepair(&["prom-lint", exposition_path.to_str().unwrap()]);
    assert!(ok, "{lint_stderr}");
    assert!(lint_stderr.contains(": ok"), "{lint_stderr}");
}

#[test]
fn prom_lint_rejects_malformed_exposition() {
    let dir = std::env::temp_dir().join("ftrepair-cli-promdump");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad-exposition.txt");
    std::fs::write(&bad, "ftr_orphan_bucket{le=\"0.5\"} 3\nnot a sample line\n").unwrap();
    let (_, stderr, ok) = ftrepair(&["prom-lint", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("prom-lint"), "{stderr}");
}

#[test]
fn trace_out_without_a_path_is_rejected() {
    let (_, stderr, ok) = ftrepair(&["repair", &spec("toggle_pair.ftr"), "--trace-out"]);
    assert!(!ok);
    assert!(stderr.contains("--trace-out requires an argument"), "{stderr}");
}

/// The exit-code contract documented in the README's Quick start table:
/// 0 success, 1 failure, 2 usage, 124 deadline, 125 node budget. (3 —
/// produced-but-unverifiable — is deliberately unpinned: it only fires on
/// an internal bug.)
#[test]
fn exit_codes_are_a_contract() {
    let (_, _, code) = ftrepair_code(&["repair", &spec("toggle_pair.ftr")]);
    assert_eq!(code, Some(0), "success is 0");

    let dir = std::env::temp_dir().join("ftrepair-cli-exit-codes");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.ftr");
    std::fs::write(&bad, "program broken (((").unwrap();
    let (_, stderr, code) = ftrepair_code(&["repair", bad.to_str().unwrap()]);
    assert_eq!(code, Some(1), "unparseable spec is 1: {stderr}");

    let (_, stderr, code) = ftrepair_code(&["repair", "no-such-file.ftr"]);
    assert_eq!(code, Some(2), "unreadable input is a usage error: {stderr}");
    let (_, stderr, code) = ftrepair_code(&["repair", &spec("toggle_pair.ftr"), "--resume"]);
    assert_eq!(code, Some(2), "--resume without --checkpoint-dir is 2: {stderr}");
    assert!(stderr.contains("--resume requires --checkpoint-dir"), "{stderr}");

    let (_, stderr, code) = ftrepair_code(&["repair", &spec("token_ring.ftr"), "--timeout", "0"]);
    assert_eq!(code, Some(124), "deadline exhaustion is 124: {stderr}");

    let (_, stderr, code) = ftrepair_code(&["repair", &spec("token_ring.ftr"), "--max-nodes", "1"]);
    assert_eq!(code, Some(125), "node-budget exhaustion is 125: {stderr}");
}

/// The offline checkpoint round trip: a run starved into exit 125 leaves a
/// resume slot behind (and says so), `--resume` continues from it to a
/// verified repair, and success clears the slot. The starvation budget is
/// node-count based, so this is deterministic across build profiles.
#[test]
fn aborted_repair_checkpoints_and_resume_completes() {
    let dir = std::env::temp_dir().join(format!("ftrepair-cli-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap();
    let chain = spec("stabilizing_chain10.ftr");

    let (_, stderr, code) =
        ftrepair_code(&["repair", &chain, "--max-nodes", "20000", "--checkpoint-dir", dir_str]);
    assert_eq!(code, Some(125), "{stderr}");
    assert!(stderr.contains("rerun with --resume"), "{stderr}");
    let slots = || {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "ckpt"))
            .count()
    };
    assert_eq!(slots(), 1, "the abort left one checkpoint slot");

    let (_, stderr, code) =
        ftrepair_code(&["repair", &chain, "--checkpoint-dir", dir_str, "--resume"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("resuming from checkpoint at iteration"), "{stderr}");
    assert!(stderr.contains("verified: true"), "{stderr}");
    assert_eq!(slots(), 0, "success cleared the slot");

    // A fresh `--resume` with nothing on disk is honest about it and
    // still completes cold.
    let (_, stderr, code) =
        ftrepair_code(&["repair", &chain, "--checkpoint-dir", dir_str, "--resume"]);
    assert_eq!(code, Some(0), "{stderr}");
    assert!(stderr.contains("no checkpoint for this spec; starting cold"), "{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Quickstart: build a tiny distributed program, add masking
//! fault-tolerance with lazy repair, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftrepair::program::{ProgramBuilder, Update};
use ftrepair::repair::{lazy_repair, verify::verify_outcome, RepairOptions};

fn main() {
    // A two-process system. Process `a` toggles x between 0 and 1 (the
    // legitimate states); process `b` toggles an independent bit y.
    // A fault can push x to the illegal value 2; the original program has
    // no way back.
    let mut b = ProgramBuilder::new("quickstart");
    let x = b.var("x", 3);
    let y = b.var("y", 2);

    b.process("a", &[x], &[x]);
    let g0 = b.cx().assign_eq(x, 0);
    b.action(g0, &[(x, Update::Const(1))]);
    let g1 = b.cx().assign_eq(x, 1);
    b.action(g1, &[(x, Update::Const(0))]);

    b.process("b", &[y], &[y]);
    let h0 = b.cx().assign_eq(y, 0);
    b.action(h0, &[(y, Update::Const(1))]);
    let h1 = b.cx().assign_eq(y, 1);
    b.action(h1, &[(y, Update::Const(0))]);

    let inv = {
        let a0 = b.cx().assign_eq(x, 0);
        let a1 = b.cx().assign_eq(x, 1);
        b.cx().mgr().or(a0, a1)
    };
    b.invariant(inv);

    let fg = b.cx().assign_eq(x, 1);
    b.fault_action(fg, &[(x, Update::Const(2))]);

    let mut prog = b.build();
    println!("program: {} ({} states)", prog.name, {
        let u = prog.cx.state_universe();
        prog.cx.count_states(u)
    });

    // Repair.
    let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
    assert!(!out.failed, "repair failed");
    println!(
        "repaired in {} outer iteration(s): step1 {:?}, step2 {:?}",
        out.stats.outer_iterations, out.stats.step1_time, out.stats.step2_time
    );

    // Independent verification: masking tolerance + realizability.
    let (masking, realizability) = verify_outcome(&mut prog, &out);
    println!("masking tolerant: {}", masking.ok());
    println!("realizable:       {}", realizability.ok());
    assert!(masking.ok() && realizability.ok());

    // Show the synthesized recovery: process `a` gained transitions out of
    // the fault state x=2 — using only variables it may read and write.
    let s2 = prog.cx.assign_eq(x, 2);
    let recovery = prog.cx.mgr().and(out.processes[0].trans, s2);
    println!("\nsynthesized recovery transitions of process `a`:");
    for (from, to) in prog.cx.enumerate_transitions(recovery, 16) {
        println!("  (x={}, y={})  ->  (x={}, y={})", from[0], from[1], to[0], to[1]);
    }
}

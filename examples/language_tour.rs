//! The guarded-command input language end to end: parse a textual program,
//! repair it, and print the repaired process actions.
//!
//! ```text
//! cargo run --release --example language_tour
//! ```

use ftrepair::repair::{lazy_repair, verify::verify_outcome, RepairOptions};

const SOURCE: &str = r#"
// Two independent toggles. A glitch fault can push x to the illegal
// value 2; the original program has no way back, so lazy repair must
// synthesize recovery — readable/writable by process px only.

program toggle_pair;

var x : 0..2;
var y : boolean;

process px
  read x;
  write x;
begin
  (x = 0) -> x := 1;
  (x = 1) -> x := 0;
end

process py
  read y;
  write y;
begin
  (y = 0) -> y := 1;
  (y = 1) -> y := 0;
end

fault glitch
begin
  (x = 1) -> x := 2;
end

invariant (x = 0) | (x = 1);
"#;

fn main() {
    println!("source:\n{SOURCE}");
    let mut prog = ftrepair::lang::load(SOURCE).expect("program should compile");
    println!(
        "compiled: {} with {} processes over {} variables",
        prog.name,
        prog.processes.len(),
        prog.cx.num_program_vars()
    );

    let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
    assert!(!out.failed, "repair failed");
    let (m, r) = verify_outcome(&mut prog, &out);
    println!("masking tolerant: {} | realizable: {}\n", m.ok(), r.ok());
    assert!(m.ok() && r.ok());

    for p in &out.processes {
        println!("repaired transitions of {}:", p.name);
        for (from, to) in prog.cx.enumerate_transitions(p.trans, 32) {
            println!("  (x={}, y={}) -> (x={}, y={})", from[0], from[1], to[0], to[1]);
        }
        println!();
    }
    println!(
        "note: px gained recovery from x=2 — identical for both values of y,\n\
         because px cannot read y (the transitions come as one complete group).\n\
         py lost its toggle entirely: py cannot read x, and in states with\n\
         x=2 a y-toggle would postpone recovery forever, so the whole group\n\
         (including the harmless x∈{{0,1}} members) must go — the price of\n\
         the read restriction, exactly as the theory predicts."
    );
}

//! Quick comparison of the three reorder modes on one case-study instance.
//!
//! Usage: `cargo run --release --example reorder_probe [chain|byz] [n] [d]`

use ftrepair::casestudies::{byzantine_agreement, stabilizing_chain};
use ftrepair::program::DistributedProgram;
use ftrepair::repair::{lazy_repair, ReorderMode, RepairOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let family = args.get(1).map(String::as_str).unwrap_or("chain");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let d: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let build = |family: &str| -> DistributedProgram {
        match family {
            "byz" => byzantine_agreement(n).0,
            _ => stabilizing_chain(n, d).0,
        }
    };
    println!("instance: {family} n={n} d={d}");
    for mode in [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto] {
        let mut p = build(family);
        let t = std::time::Instant::now();
        let out =
            lazy_repair(&mut p, &RepairOptions { reorder: mode, ..Default::default() }).unwrap();
        let s = p.cx.mgr_ref().stats();
        let gcs = s.gc_runs;
        println!(
            "{mode:?}: total={:?} step1={:?} step2={:?} peak={} post={} runs={} swaps={} aborted={} gcs={gcs}",
            t.elapsed(),
            out.stats.step1_time,
            out.stats.step2_time,
            s.peak_live_nodes,
            s.post_reorder_nodes,
            s.reorder_runs,
            s.reorder_swaps,
            s.reorder_aborted
        );
    }
}

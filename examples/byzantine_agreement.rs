//! The paper's headline case study: adding masking byzantine tolerance to
//! the agreement protocol, comparing lazy repair with the cautious
//! baseline.
//!
//! ```text
//! cargo run --release --example byzantine_agreement [n]
//! ```

use ftrepair::casestudies::byzantine_agreement;
use ftrepair::repair::{cautious_repair, lazy_repair, verify::verify_outcome, RepairOptions};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("byzantine agreement with {n} non-generals\n");

    let (mut prog, vars) = byzantine_agreement(n);
    let states = {
        let u = prog.cx.state_universe();
        prog.cx.count_states(u)
    };
    println!("state space: 10^{:.1} states", states.log10());

    // Lazy repair.
    let t0 = Instant::now();
    let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
    let lazy_time = t0.elapsed();
    assert!(!out.failed);
    let (m, r) = verify_outcome(&mut prog, &out);
    assert!(m.ok() && r.ok(), "verification failed: {m:?} {r:?}");
    println!(
        "lazy repair:     {:>10.3}s  (step1 {:.3}s + step2 {:.3}s), verified ✓",
        lazy_time.as_secs_f64(),
        out.stats.step1_time.as_secs_f64(),
        out.stats.step2_time.as_secs_f64(),
    );

    // Cautious baseline on a fresh instance.
    let (mut prog2, _) = byzantine_agreement(n);
    let t1 = Instant::now();
    let cau = cautious_repair(&mut prog2, &RepairOptions::default()).unwrap();
    let cautious_time = t1.elapsed();
    assert!(!cau.failed);
    println!(
        "cautious repair: {:>10.3}s  ({} iterations of in-loop group work)",
        cautious_time.as_secs_f64(),
        cau.stats.outer_iterations,
    );
    println!("speedup: {:.1}×\n", cautious_time.as_secs_f64() / lazy_time.as_secs_f64());

    // What did repair change? Show process 0's behavior in one interesting
    // situation: the general is byzantine and flip-flopping.
    println!("invariant: {} states", prog.cx.count_states(out.invariant));
    println!("fault-span: {} states", prog.cx.count_states(out.span));

    // Count how much of each process's finalize action survived: in the
    // repaired program a non-general only finalizes when it is safe.
    for (j, p) in out.processes.iter().enumerate() {
        let fj = vars.f[j];
        let finalizing = {
            let f0 = prog.cx.assign_eq(fj, 0);
            let f1 = prog.cx.assign_const(fj, 1);
            let step = prog.cx.mgr().and(f0, f1);
            prog.cx.mgr().and(p.trans, step)
        };
        let within_span = prog.cx.mgr().and(finalizing, out.span);
        println!(
            "process {j}: {} finalize transitions inside the fault-span",
            prog.cx.count_transitions(within_span)
        );
    }
}

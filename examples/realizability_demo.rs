//! The paper's Figures 3–5, runnable: why not every transition system is a
//! distributed program, and how read-restriction *groups* work.
//!
//! ```text
//! cargo run --release --example realizability_demo
//! ```

use ftrepair::program::realizability::{expand_group, group, is_group_closed, write_ok};
use ftrepair::program::ProgramBuilder;

fn main() {
    // The setting of Section III-B: three booleans; p_j reads {v0,v1} and
    // writes {v1}; p_k reads {v0,v2} and writes {v2}.
    let mut b = ProgramBuilder::new("figures-3-to-5");
    let v0 = b.var("v0", 2);
    let v1 = b.var("v1", 2);
    let v2 = b.var("v2", 2);
    b.process("pj", &[v0, v1], &[v1]);
    b.process("pk", &[v0, v2], &[v2]);
    b.invariant(ftrepair::bdd::TRUE);
    let mut p = b.build();

    let show = |p: &mut ftrepair::program::DistributedProgram, t| {
        for (from, to) in p.cx.enumerate_transitions(t, 16) {
            println!("    ({}{}{}) -> ({}{}{})", from[0], from[1], from[2], to[0], to[1], to[2]);
        }
    };

    // Figure 3: (000 -> 011) changes v1 and v2 at once.
    println!("Figure 3: the transition");
    let fig3 = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 1]);
    show(&mut p, fig3);
    let uw_j = p.unwritable(0);
    let ok_j = write_ok(&mut p.cx, &uw_j);
    let uw_k = p.unwritable(1);
    let ok_k = write_ok(&mut p.cx, &uw_k);
    println!("  p_j can execute it: {}", p.cx.mgr().leq(fig3, ok_j));
    println!("  p_k can execute it: {}", p.cx.mgr().leq(fig3, ok_k));
    println!("  => not realizable by any process (write restriction)\n");

    // Figure 4: (000 -> 010) alone — write-legal for p_j but its group has
    // a second member.
    println!("Figure 4: the transition");
    let fig4 = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
    show(&mut p, fig4);
    println!("  p_j write-legal: {}", p.cx.mgr().leq(fig4, ok_j));
    let ur_j = p.unreadable(0);
    println!("  group-closed:    {}", is_group_closed(&mut p.cx, &ur_j, fig4));
    println!("  its group (p_j cannot read v2, so both v2 values must behave alike):");
    let g = group(&mut p.cx, &ur_j, fig4);
    show(&mut p, g);
    println!();

    // Figure 5: the complete group is realizable.
    println!("Figure 5: the complete group");
    show(&mut p, g);
    println!("  group-closed: {}", is_group_closed(&mut p.cx, &ur_j, g));
    println!("  => realizable by p_j as `if v0=0 ∧ v1=0 then v1 := 1`\n");

    // ExpandGroup (Section V-B): drop v0 from the guard, absorbing the
    // sibling group for v0=1.
    println!("ExpandGroup over v0:");
    let bigger = expand_group(&mut p.cx, v0, g);
    show(&mut p, bigger);
    println!(
        "  one action `if v1=0 then v1 := 1` now covers {} transitions",
        p.cx.count_transitions(bigger)
    );
}

//! The stabilizing-chain case study (`Sc^n`): repair over state spaces the
//! size of the paper's Table III rows, with the Step 1 / Step 2 split.
//!
//! ```text
//! cargo run --release --example stabilizing_chain [n] [d]
//! ```

use ftrepair::casestudies::stabilizing_chain;
use ftrepair::repair::{lazy_repair, verify::verify_outcome, RepairOptions};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10);
    let d: u64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    println!("stabilizing chain: {n} cells over domain 0..{d}\n");

    let (mut prog, cells) = stabilizing_chain(n, d);
    let states = (d as f64).powi(n as i32);
    println!("state space: {:.2e} states (10^{:.1})", states, states.log10());

    let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
    assert!(!out.failed);
    println!(
        "lazy repair: step1 {:.3}s, step2 {:.3}s — the paper's Table III shape\n",
        out.stats.step1_time.as_secs_f64(),
        out.stats.step2_time.as_secs_f64(),
    );

    // Verify (symbolically; the state space is far beyond enumeration).
    let (m, r) = verify_outcome(&mut prog, &out);
    println!("masking tolerant: {}", m.ok());
    println!("realizable:       {}", r.ok());
    assert!(m.ok() && r.ok());

    // The chain's own copy-left actions survive repair: check cell 1's
    // process kept its original action wherever the span allows it.
    let orig = prog.processes[0].trans;
    let kept = out.processes[0].trans;
    let survived = prog.cx.mgr().and(orig, kept);
    println!(
        "\nprocess c1: {} of {} original transitions survive",
        prog.cx.count_transitions(survived),
        prog.cx.count_transitions(orig),
    );
    let _ = cells;
}

//! Overhead check: fail-stop repair with telemetry off vs on.
use ftrepair::casestudies::byzantine_failstop;
use ftrepair::repair::{lazy_repair, lazy_repair_traced, RepairOptions};
use ftrepair::telemetry::Telemetry;
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let runs = 15;
    for _ in 0..2 {
        let mut p = byzantine_failstop(3).0;
        std::hint::black_box(lazy_repair(&mut p, &RepairOptions::default()).unwrap());
    }
    let mut off = vec![];
    let mut on = vec![];
    for _ in 0..runs {
        let mut p = byzantine_failstop(3).0;
        let t = Instant::now();
        std::hint::black_box(lazy_repair(&mut p, &RepairOptions::default()).unwrap());
        off.push(t.elapsed().as_secs_f64());

        let mut p = byzantine_failstop(3).0;
        let tele = Telemetry::new();
        let t = Instant::now();
        std::hint::black_box(lazy_repair_traced(&mut p, &RepairOptions::default(), &tele).unwrap());
        on.push(t.elapsed().as_secs_f64());
    }
    let (o, n) = (median(off), median(on));
    println!(
        "off median: {o:.4}s  on median: {n:.4}s  on-overhead: {:+.2}%",
        (n / o - 1.0) * 100.0
    );
}
